#include "core/flat_scheme.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <type_traits>

#include "baseline/cowen.hpp"
#include "baseline/full_table.hpp"
#include "util/parallel.hpp"

namespace croute {

namespace {

using flat_detail::eytzinger_find;
using flat_detail::pack_key;

/// Fills perm[eytzinger_pos] = sorted_pos for a slice of \p len keys.
/// Standard in-order construction over the implicit heap (1-based \p k).
std::uint32_t fill_eytzinger(std::vector<std::uint32_t>& perm,
                             std::uint32_t len, std::uint32_t k,
                             std::uint32_t next) {
  if (k <= len) {
    next = fill_eytzinger(perm, len, 2 * k, next);
    perm[k - 1] = next++;
    next = fill_eytzinger(perm, len, 2 * k + 1, next);
  }
  return next;
}

/// Runs fn(v, perm_scratch) for every vertex, sharded over \p pool when it
/// has more than one worker. Callers write only to slots derived from v
/// (all offsets are prefix-summed up front), so the result is
/// byte-identical at every pool size — including the serial fallback.
void for_vertices(
    ThreadPool* pool, VertexId n,
    const std::function<void(VertexId, std::vector<std::uint32_t>&)>& fn) {
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    std::vector<std::vector<std::uint32_t>> perms(pool->size());
    pool->for_each(
        n,
        [&](std::uint64_t v, unsigned worker) {
          fn(static_cast<VertexId>(v), perms[worker]);
        },
        64);
  } else {
    std::vector<std::uint32_t> perm;
    for (VertexId v = 0; v < n; ++v) fn(v, perm);
  }
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

const char* flat_lookup_name(FlatLookup lookup) noexcept {
  switch (lookup) {
    case FlatLookup::kEytzinger: return "eytzinger";
    case FlatLookup::kFKS: return "fks";
  }
  return "?";
}

CROUTE_DETERMINISTIC FlatScheme::FlatScheme(const TZScheme& scheme,
                                            const FlatSchemeOptions& options)
    : base_(&scheme), options_(options) {
  using clock = std::chrono::steady_clock;
  ThreadPool* pool = options.pool;
  stats_.threads = pool != nullptr ? std::max(1u, pool->size()) : 1;

  const auto t0 = clock::now();
  compile_tables(pool);
  const auto t1 = clock::now();
  compile_directories(pool);
  const auto t2 = clock::now();
  compile_labels(pool);
  const auto t3 = clock::now();
  compile_hashes(pool);
  const auto t4 = clock::now();

  // Precompute wire sizes: tree root id + dfs + gamma-coded light count +
  // the light ports themselves (the exact layout TZRouter::header_bits
  // serializes through a BitWriter).
  const std::uint32_t id_bits = bits_for_universe(graph().num_vertices());
  const TreeRoutingScheme::Codec& codec = base_->tree_codec();
  header_fixed_bits_ = std::uint64_t{id_bits} + codec.dfs_bits;
  port_bits_ = codec.port_bits;
  std::uint32_t max_len = 0;
  for (const std::uint32_t len : tbl_own_light_len_) {
    max_len = std::max(max_len, len);
  }
  for (const std::uint32_t len : dir_light_len_) {
    max_len = std::max(max_len, len);
  }
  for (const LabelEntryView& e : lab_entries_) {
    max_len = std::max(max_len, e.light_len);
  }
  bits_by_len_.resize(std::size_t{max_len} + 1);
  for (std::uint32_t len = 0; len <= max_len; ++len) {
    bits_by_len_[len] = id_bits + codec.dfs_bits +
                        gamma_bits(std::uint64_t{len} + 1) +
                        std::uint64_t{len} * codec.port_bits;
  }

  stats_.tables_ms = ms_between(t0, t1);
  stats_.directories_ms = ms_between(t1, t2);
  stats_.labels_ms = ms_between(t2, t3);
  stats_.hash_ms = ms_between(t3, t4);
  stats_.pool_bytes = pool_bytes();
  stats_.total_ms = ms_between(t0, clock::now());
}

void FlatScheme::compile_tables(ThreadPool* pool) {
  const VertexId n = graph().num_vertices();
  // Sizing pass (serial, O(total entries), allocation-free): CSR offsets
  // plus each vertex's base into the shared light-port pool — the fill
  // pass can then write disjoint slices in parallel.
  tbl_off_.assign(std::size_t{n} + 1, 0);
  std::vector<std::uint32_t> light_base(std::size_t{n} + 1, 0);
  std::uint64_t running = 0;       // 64-bit: detect overflow before it wraps
  std::uint64_t light_running = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexTable& table = base_->table(v);
    running += table.size();
    CROUTE_REQUIRE(running < kNotFound, "table pool exceeds the index space");
    tbl_off_[v + 1] = static_cast<std::uint32_t>(running);
    for (const TableEntry& e : table.entries()) light_running += e.light_len;
    CROUTE_REQUIRE(light_running < kNotFound,
                   "light-port pool exceeds the index space");
    light_base[v + 1] = static_cast<std::uint32_t>(light_running);
  }
  const std::uint32_t total = tbl_off_[n];
  tbl_key_.resize(total);
  tbl_record_.resize(total);
  tbl_dist_.resize(total);
  tbl_level_.resize(total);
  tbl_own_dfs_.resize(total);
  tbl_own_light_off_.resize(total);
  tbl_own_light_len_.resize(total);
  tbl_light_pool_.resize(light_base[n]);

  const bool eytz = options_.lookup == FlatLookup::kEytzinger;
  for_vertices(pool, n, [&](VertexId v, std::vector<std::uint32_t>& perm) {
    const VertexTable& table = base_->table(v);
    const std::span<const TableEntry> entries = table.entries();  // sorted
    const auto len = static_cast<std::uint32_t>(entries.size());
    perm.resize(len);
    if (eytz) {
      fill_eytzinger(perm, len, 1, 0);
    } else {
      for (std::uint32_t p = 0; p < len; ++p) perm[p] = p;
    }
    std::uint32_t light_off = light_base[v];
    for (std::uint32_t p = 0; p < len; ++p) {
      const TableEntry& e = entries[perm[p]];
      const std::uint32_t idx = tbl_off_[v] + p;
      tbl_key_[idx] = e.w;
      tbl_record_[idx] = e.record;
      tbl_dist_[idx] = e.dist;
      tbl_level_[idx] = e.level;
      tbl_own_dfs_[idx] = e.record.dfs_in;
      const std::span<const Port> ports = table.own_light_ports(e);
      tbl_own_light_off_[idx] = light_off;
      tbl_own_light_len_[idx] = static_cast<std::uint32_t>(ports.size());
      std::copy(ports.begin(), ports.end(),
                tbl_light_pool_.begin() + light_off);
      light_off += static_cast<std::uint32_t>(ports.size());
    }
  });
}

void FlatScheme::compile_directories(ThreadPool* pool) {
  const VertexId n = graph().num_vertices();
  dir_off_.assign(std::size_t{n} + 1, 0);
  std::vector<std::uint32_t> light_base(std::size_t{n} + 1, 0);
  std::uint64_t running = 0;  // 64-bit: detect overflow before it wraps
  std::uint64_t light_running = 0;
  for (VertexId v = 0; v < n; ++v) {
    const ClusterDirectory& dir = base_->directory(v);
    running += dir.size();
    CROUTE_REQUIRE(running < kNotFound,
                   "directory pool exceeds the index space");
    dir_off_[v + 1] = static_cast<std::uint32_t>(running);
    light_running += dir.light_pool_size();
    CROUTE_REQUIRE(light_running < kNotFound,
                   "light-port pool exceeds the index space");
    light_base[v + 1] = static_cast<std::uint32_t>(light_running);
  }
  const std::uint32_t total = dir_off_[n];
  dir_key_.resize(total);
  dir_dfs_.resize(total);
  dir_light_off_.resize(total);
  dir_light_len_.resize(total);
  dir_light_pool_.resize(light_base[n]);

  const bool eytz = options_.lookup == FlatLookup::kEytzinger;
  for_vertices(pool, n, [&](VertexId v, std::vector<std::uint32_t>& perm) {
    const ClusterDirectory& dir = base_->directory(v);
    const std::span<const VertexId> members = dir.members();  // sorted
    const auto len = static_cast<std::uint32_t>(members.size());
    perm.resize(len);
    if (eytz) {
      fill_eytzinger(perm, len, 1, 0);
    } else {
      for (std::uint32_t p = 0; p < len; ++p) perm[p] = p;
    }
    std::uint32_t light_off = light_base[v];
    for (std::uint32_t p = 0; p < len; ++p) {
      const std::uint32_t src = perm[p];
      const std::uint32_t idx = dir_off_[v] + p;
      dir_key_[idx] = members[src];
      dir_dfs_[idx] = dir.dfs_at(src);
      const std::span<const Port> ports = dir.light_ports_at(src);
      dir_light_off_[idx] = light_off;
      dir_light_len_[idx] = static_cast<std::uint32_t>(ports.size());
      std::copy(ports.begin(), ports.end(),
                dir_light_pool_.begin() + light_off);
      light_off += static_cast<std::uint32_t>(ports.size());
    }
  });
}

void FlatScheme::compile_labels(ThreadPool* pool) {
  const VertexId n = graph().num_vertices();
  lab_off_.assign(std::size_t{n} + 1, 0);
  std::vector<std::uint32_t> light_base(std::size_t{n} + 1, 0);
  std::uint64_t running = 0;  // 64-bit: detect overflow before it wraps
  std::uint64_t light_running = 0;
  for (VertexId t = 0; t < n; ++t) {
    const RoutingLabel& label = base_->label(t);
    running += label.entries.size();
    CROUTE_REQUIRE(running < kNotFound, "label pool exceeds the index space");
    lab_off_[t + 1] = static_cast<std::uint32_t>(running);
    for (const LabelEntry& e : label.entries) {
      light_running += e.tree.light_ports.size();
    }
    CROUTE_REQUIRE(light_running < kNotFound,
                   "light-port pool exceeds the index space");
    light_base[t + 1] = static_cast<std::uint32_t>(light_running);
  }
  lab_entries_.resize(lab_off_[n]);
  lab_light_pool_.resize(light_base[n]);
  for_vertices(pool, n, [&](VertexId t, std::vector<std::uint32_t>&) {
    const RoutingLabel& label = base_->label(t);
    std::uint32_t light_off = light_base[t];
    for (std::size_t j = 0; j < label.entries.size(); ++j) {
      const LabelEntry& e = label.entries[j];
      LabelEntryView& out = lab_entries_[lab_off_[t] + j];
      out.level = e.level;
      out.w = e.w;
      out.dist = e.dist;
      out.dfs_in = e.tree.dfs_in;
      out.light_off = light_off;
      out.light_len = static_cast<std::uint32_t>(e.tree.light_ports.size());
      std::copy(e.tree.light_ports.begin(), e.tree.light_ports.end(),
                lab_light_pool_.begin() + light_off);
      light_off += out.light_len;
    }
  });
}

void FlatScheme::compile_hashes(ThreadPool* pool) {
  if (options_.lookup != FlatLookup::kFKS) return;
  const VertexId n = graph().num_vertices();
  std::vector<std::pair<std::uint64_t, std::uint32_t>> tbl_kv;
  tbl_kv.reserve(tbl_off_[n]);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t idx = tbl_off_[v]; idx < tbl_off_[v + 1]; ++idx) {
      tbl_kv.emplace_back(pack_key(v, tbl_key_[idx]), idx);
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> dir_kv;
  dir_kv.reserve(dir_off_[n]);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t idx = dir_off_[v]; idx < dir_off_[v + 1]; ++idx) {
      dir_kv.emplace_back(pack_key(v, dir_key_[idx]), idx);
    }
  }

  // Independent seed streams: the table index's retries must not shift
  // the directory index's draws (retry-deterministic compilation — and
  // the two builds can run concurrently).
  Rng tbl_rng(mix64(options_.hash_seed ^ 0x7ab1e0f15eedULL));
  Rng dir_rng(mix64(options_.hash_seed ^ 0xd1c709e55eedULL));
  PerfectHashMap::BuildStats tbl_stats, dir_stats;
  auto build_one = [&](std::uint64_t which) {
    if (which == 0) {
      tbl_hash_ = PerfectHashMap::build(tbl_kv, tbl_rng, &tbl_stats);
    } else {
      dir_hash_ = PerfectHashMap::build(dir_kv, dir_rng, &dir_stats);
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->for_each(2, [&](std::uint64_t which, unsigned) { build_one(which); },
                   1);
  } else {
    build_one(0);
    build_one(1);
  }
  stats_.fks_top_retries = tbl_stats.top_retries + dir_stats.top_retries;
  stats_.fks_bucket_retries =
      tbl_stats.bucket_retries + dir_stats.bucket_retries;
}

CROUTE_HOT std::uint32_t FlatScheme::find(VertexId v,
                                          VertexId w) const noexcept {
  if (tbl_hash_) {
    const auto idx = tbl_hash_->find(pack_key(v, w));
    return idx ? *idx : kNotFound;
  }
  const std::uint32_t off = tbl_off_[v];
  const std::uint32_t len = tbl_off_[v + 1] - off;
  const std::uint32_t pos = eytzinger_find(tbl_key_.data() + off, len, w);
  return pos == len ? kNotFound : off + pos;
}

CROUTE_HOT std::uint32_t FlatScheme::dir_find(VertexId v,
                                              VertexId t) const noexcept {
  if (dir_hash_) {
    const auto idx = dir_hash_->find(pack_key(v, t));
    return idx ? *idx : kNotFound;
  }
  const std::uint32_t off = dir_off_[v];
  const std::uint32_t len = dir_off_[v + 1] - off;
  const std::uint32_t pos = eytzinger_find(dir_key_.data() + off, len, t);
  return pos == len ? kNotFound : off + pos;
}

std::uint64_t FlatScheme::pool_bytes() const noexcept {
  auto bytes = [](const auto& vec) {
    return vec.size() * sizeof(typename std::decay_t<decltype(vec)>::value_type);
  };
  std::uint64_t total = bytes(tbl_off_) + bytes(tbl_key_) + bytes(tbl_record_) +
                        bytes(tbl_dist_) + bytes(tbl_level_) +
                        bytes(tbl_own_dfs_) + bytes(tbl_own_light_off_) +
                        bytes(tbl_own_light_len_) + bytes(tbl_light_pool_) +
                        bytes(dir_off_) + bytes(dir_key_) + bytes(dir_dfs_) +
                        bytes(dir_light_off_) + bytes(dir_light_len_) +
                        bytes(dir_light_pool_) + bytes(lab_off_) +
                        bytes(lab_entries_) + bytes(lab_light_pool_) +
                        bytes(bits_by_len_);
  if (tbl_hash_) total += tbl_hash_->overhead_bits() / 8;
  if (dir_hash_) total += dir_hash_->overhead_bits() / 8;
  return total;
}

CROUTE_HOT FlatHeader FlatRouter::prepare(VertexId s, VertexId t,
                                          RoutingPolicy policy) const {
  return prepare_resolved(s, t, flat_->label(t), policy);
}

CROUTE_HOT FlatHeader FlatRouter::prepare_resolved(
    VertexId s, VertexId t, std::span<const FlatScheme::LabelEntryView> label,
    const Port* light_pool, RoutingPolicy policy) const {
  const FlatScheme& f = *flat_;
  CROUTE_REQUIRE(!label.empty(), "malformed destination label");
  // Rule 0: t ∈ C(s) — one directory probe (index + payload views).
  if (policy != RoutingPolicy::kLabelOnly) {
    const std::uint32_t di = f.dir_find(s, t);
    if (di != FlatScheme::kNotFound) {
      const std::span<const Port> ports = f.dir_light_ports(di);
      return FlatHeader{t,
                        s,
                        f.dir_dfs(di),
                        ports.data(),
                        static_cast<std::uint32_t>(ports.size()),
                        f.header_bits_for(
                            static_cast<std::uint32_t>(ports.size()))};
    }
  }
  const FlatScheme::LabelEntryView* chosen = nullptr;
  if (policy != RoutingPolicy::kMinEstimate) {
    for (const FlatScheme::LabelEntryView& e : label) {
      if (f.find(s, e.w) != FlatScheme::kNotFound) {
        chosen = &e;
        break;
      }
    }
  } else {
    CROUTE_REQUIRE(f.base().options().labels_carry_distances,
                   "kMinEstimate needs labels built with "
                   "labels_carry_distances");
    Weight best = kInfiniteWeight;
    for (const FlatScheme::LabelEntryView& e : label) {
      const std::uint32_t idx = f.find(s, e.w);
      if (idx == FlatScheme::kNotFound) continue;
      const Weight estimate = f.dist(idx) + e.dist;
      if (estimate < best) {
        best = estimate;
        chosen = &e;
      }
    }
  }
  CROUTE_ASSERT(chosen != nullptr,
                "no candidate pivot found: top-level landmark missing from "
                "the source bunch");
  return FlatHeader{t,
                    chosen->w,
                    chosen->dfs_in,
                    light_pool + chosen->light_off,
                    chosen->light_len,
                    f.header_bits_for(chosen->light_len)};
}

CROUTE_HOT FlatHeader FlatRouter::prepare_handshake(VertexId s,
                                                    VertexId t) const {
  const FlatScheme& f = *flat_;
  const TZPreprocessing& pre = f.base().preprocessing();
  const std::uint32_t k = f.k();
  // Bidirectional pivot walk, as TZRouter::prepare_handshake, with flat
  // membership probes.
  VertexId u = s, v = t;
  VertexId w = u;  // ŵ_0(u) = u
  std::uint32_t i = 0;
  while (f.find(v, w) == FlatScheme::kNotFound) {
    ++i;
    CROUTE_ASSERT(i < k, "handshake walk exceeded the hierarchy height");
    std::swap(u, v);
    w = pre.effective_pivot(i, u);
  }
  const std::uint32_t idx = f.find(t, w);
  CROUTE_ASSERT(idx != FlatScheme::kNotFound,
                "handshake meeting tree misses the destination");
  const std::span<const Port> ports = f.own_light_ports(idx);
  return FlatHeader{t,
                    w,
                    f.own_dfs(idx),
                    ports.data(),
                    static_cast<std::uint32_t>(ports.size()),
                    f.header_bits_for(static_cast<std::uint32_t>(ports.size()))};
}

CROUTE_HOT TreeDecision FlatRouter::step(VertexId v,
                                         const FlatHeader& header) const {
  const std::uint32_t idx = flat_->find(v, header.tree_root);
  CROUTE_ASSERT(idx != FlatScheme::kNotFound,
                "packet left the routing tree: vertex has no entry for it");
  // TreeRoutingScheme::decide over non-owning label pieces.
  const TreeNodeRecord& here = flat_->record(idx);
  if (header.dfs_in == here.dfs_in) return TreeDecision{true, kNoPort};
  if (header.dfs_in < here.dfs_in || header.dfs_in >= here.dfs_out) {
    CROUTE_ASSERT(here.parent_port != kNoPort,
                  "destination outside the tree reached the root");
    return TreeDecision{false, here.parent_port};
  }
  if (header.dfs_in >= here.heavy_in && header.dfs_in < here.heavy_out &&
      here.heavy_port != kNoPort) {
    return TreeDecision{false, here.heavy_port};
  }
  CROUTE_ASSERT(here.light_depth < header.light_len,
                "label misses the light port for this branch point");
  return TreeDecision{false, header.light[here.light_depth]};
}

CROUTE_DETERMINISTIC FlatCowen::FlatCowen(const CowenScheme& cowen,
                                          const Graph& g)
    : g_(&g),
      n_(g.num_vertices()),
      id_bits_(bits_for_universe(g.num_vertices())),
      num_landmarks_(static_cast<std::uint32_t>(cowen.landmarks().size())),
      label_bits_(cowen.label_bits()) {
  const std::span<const std::uint64_t> off64 = cowen.cluster_offsets();
  CROUTE_REQUIRE(off64[n_] < kNotFound,
                 "cluster pool exceeds the index space");
  cl_off_.resize(std::size_t{n_} + 1);
  for (VertexId v = 0; v <= n_; ++v) {
    cl_off_[v] = static_cast<std::uint32_t>(off64[v]);
  }
  const std::span<const VertexId> keys = cowen.cluster_targets();
  const std::span<const Port> ports = cowen.cluster_first_ports();
  cl_key_.resize(keys.size());
  cl_port_.resize(ports.size());
  std::vector<std::uint32_t> perm;
  for (VertexId v = 0; v < n_; ++v) {
    const std::uint32_t off = cl_off_[v];
    const std::uint32_t len = cl_off_[v + 1] - off;
    perm.resize(len);
    fill_eytzinger(perm, len, 1, 0);
    for (std::uint32_t p = 0; p < len; ++p) {
      cl_key_[off + p] = keys[off + perm[p]];
      cl_port_[off + p] = ports[off + perm[p]];
    }
  }
  const std::span<const Port> lp = cowen.landmark_ports();
  lport_.assign(lp.begin(), lp.end());
  labels_.resize(n_);
  for (VertexId t = 0; t < n_; ++t) {
    const CowenScheme::Label l = cowen.label(t);
    labels_[t] = Label{l.t, l.home, l.port_at_home,
                       cowen.landmark_column(l.home)};
  }
}

CROUTE_HOT TreeDecision FlatCowen::step(VertexId v,
                                        const Label& dest) const {
  if (v == dest.t) return TreeDecision{true, kNoPort};
  // Exact hop if t ∈ C(v): one Eytzinger probe with the port alongside.
  const std::uint32_t off = cl_off_[v];
  const std::uint32_t len = cl_off_[v + 1] - off;
  const std::uint32_t pos = eytzinger_find(cl_key_.data() + off, len, dest.t);
  if (pos != len) return TreeDecision{false, cl_port_[off + pos]};
  // At the home landmark: the label's pre-recorded first edge.
  if (v == dest.home) {
    CROUTE_ASSERT(dest.port_at_home != kNoPort,
                  "label for a non-landmark destination lacks a home port");
    return TreeDecision{false, dest.port_at_home};
  }
  // Otherwise forward toward the home landmark (column pre-resolved).
  CROUTE_ASSERT(dest.home_col != kNoColumn,
                "destination's home is not a landmark");
  const Port p = lport_[std::size_t{v} * num_landmarks_ + dest.home_col];
  CROUTE_ASSERT(p != kNoPort, "missing landmark port on a connected graph");
  return TreeDecision{false, p};
}

std::uint64_t FlatCowen::table_bits(VertexId v) const noexcept {
  const std::uint32_t port_bits =
      bits_for_universe(std::uint64_t{g_->degree(v)} + 1);
  const std::uint64_t cluster_entries = cl_off_[v + 1] - cl_off_[v];
  return std::uint64_t{num_landmarks_} * port_bits +
         cluster_entries * (id_bits_ + port_bits);
}

FlatFullTable::FlatFullTable(FullTableScheme&& full, const Graph& g)
    : g_(&g),
      n_(g.num_vertices()),
      label_bits_(full.label_bits()),
      hops_(std::move(full).release_hops()) {
  CROUTE_REQUIRE(hops_.size() == std::size_t{n_} * n_,
                 "hop matrix does not match the graph");
}

std::uint64_t FlatFullTable::table_bits(VertexId v) const noexcept {
  const std::uint32_t port_bits =
      bits_for_universe(std::uint64_t{g_->degree(v)} + 1);
  return std::uint64_t{n_ - 1} * port_bits;
}

VertexId decode_wire_label(const LabelCodec& codec, VertexId n, BitReader& r,
                           std::vector<FlatScheme::LabelEntryView>& entries,
                           std::vector<Port>& ports) {
  // Mirrors LabelCodec::encode field-for-field (tz_labels.cpp); any drift
  // between the two is caught by the round-trip tests. Every size read
  // from the stream drives a loop that consumes at least one bit per
  // claimed element, so the stream's bit budget bounds the append.
  const auto t = static_cast<VertexId>(r.read_bits(codec.id_bits()));
  CROUTE_REQUIRE(t < n, "label target out of range");
  const std::uint64_t count = r.read_gamma();
  CROUTE_REQUIRE(count >= 1, "empty routing label");
  const std::uint32_t dfs_bits = codec.tree_codec().dfs_bits;
  const std::uint32_t port_bits = codec.tree_codec().port_bits;
  for (std::uint64_t i = 0; i < count; ++i) {
    FlatScheme::LabelEntryView e;
    e.level = static_cast<std::uint32_t>(r.read_gamma() - 1);
    e.w = static_cast<VertexId>(r.read_bits(codec.id_bits()));
    CROUTE_REQUIRE(e.w < n, "label pivot out of range");
    e.dist = codec.carries_distances()
                 ? std::bit_cast<Weight>(r.read_bits(64))
                 : 0;
    e.dfs_in = static_cast<std::uint32_t>(r.read_bits(dfs_bits));
    const std::uint64_t nports = r.read_gamma() - 1;
    e.light_off = static_cast<std::uint32_t>(ports.size());
    for (std::uint64_t p = 0; p < nports; ++p) {
      ports.push_back(static_cast<Port>(r.read_bits(port_bits)));
    }
    e.light_len = static_cast<std::uint32_t>(ports.size()) - e.light_off;
    entries.push_back(e);
  }
  return t;
}

}  // namespace croute

#include "core/flat_scheme.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

namespace croute {

namespace {

/// Packs a (vertex, key) pair into one 64-bit FKS key.
inline std::uint64_t pack_key(VertexId v, VertexId w) noexcept {
  return (std::uint64_t{v} << 32) | w;
}

/// Fills perm[eytzinger_pos] = sorted_pos for a slice of \p len keys.
/// Standard in-order construction over the implicit heap (1-based \p k).
std::uint32_t fill_eytzinger(std::vector<std::uint32_t>& perm,
                             std::uint32_t len, std::uint32_t k,
                             std::uint32_t next) {
  if (k <= len) {
    next = fill_eytzinger(perm, len, 2 * k, next);
    perm[k - 1] = next++;
    next = fill_eytzinger(perm, len, 2 * k + 1, next);
  }
  return next;
}

/// Branch-free Eytzinger lower-bound probe over one slice. Returns the
/// 0-based slice position of the key equal to \p x, or len (miss).
inline std::uint32_t eytzinger_find(const VertexId* keys, std::uint32_t len,
                                    VertexId x) noexcept {
  std::uint32_t i = 1;
  while (i <= len) i = 2 * i + (keys[i - 1] < x);
  i >>= std::countr_one(i) + 1;
  if (i == 0 || keys[i - 1] != x) return len;
  return i - 1;
}

/// Bits of the Elias gamma code of \p value (>= 1).
inline std::uint64_t gamma_bits(std::uint64_t value) noexcept {
  return 2 * floor_log2(value) + 1;
}

}  // namespace

const char* flat_lookup_name(FlatLookup lookup) noexcept {
  switch (lookup) {
    case FlatLookup::kEytzinger: return "eytzinger";
    case FlatLookup::kFKS: return "fks";
  }
  return "?";
}

FlatScheme::FlatScheme(const TZScheme& scheme, const FlatSchemeOptions& options)
    : base_(&scheme), options_(options) {
  Rng rng(options.hash_seed);
  compile_tables(rng);
  compile_directories(rng);
  compile_labels();

  // Precompute wire sizes: tree root id + dfs + gamma-coded light count +
  // the light ports themselves (the exact layout TZRouter::header_bits
  // serializes through a BitWriter).
  const std::uint32_t id_bits = bits_for_universe(graph().num_vertices());
  const TreeRoutingScheme::Codec& codec = base_->tree_codec();
  header_fixed_bits_ = std::uint64_t{id_bits} + codec.dfs_bits;
  port_bits_ = codec.port_bits;
  std::uint32_t max_len = 0;
  for (const std::uint32_t len : tbl_own_light_len_) {
    max_len = std::max(max_len, len);
  }
  for (const std::uint32_t len : dir_light_len_) {
    max_len = std::max(max_len, len);
  }
  for (const LabelEntryView& e : lab_entries_) {
    max_len = std::max(max_len, e.light_len);
  }
  bits_by_len_.resize(std::size_t{max_len} + 1);
  for (std::uint32_t len = 0; len <= max_len; ++len) {
    bits_by_len_[len] = id_bits + codec.dfs_bits +
                        gamma_bits(std::uint64_t{len} + 1) +
                        std::uint64_t{len} * codec.port_bits;
  }
}

void FlatScheme::compile_tables(Rng& rng) {
  const VertexId n = graph().num_vertices();
  tbl_off_.assign(std::size_t{n} + 1, 0);
  std::uint64_t running = 0;  // 64-bit: detect overflow before it wraps
  for (VertexId v = 0; v < n; ++v) {
    running += base_->table(v).size();
    CROUTE_REQUIRE(running < kNotFound, "table pool exceeds the index space");
    tbl_off_[v + 1] = static_cast<std::uint32_t>(running);
  }
  const std::uint32_t total = tbl_off_[n];
  tbl_key_.resize(total);
  tbl_record_.resize(total);
  tbl_dist_.resize(total);
  tbl_level_.resize(total);
  tbl_own_dfs_.resize(total);
  tbl_own_light_off_.resize(total);
  tbl_own_light_len_.resize(total);

  std::vector<std::uint32_t> perm;
  for (VertexId v = 0; v < n; ++v) {
    const VertexTable& table = base_->table(v);
    const std::span<const TableEntry> entries = table.entries();  // sorted
    const auto len = static_cast<std::uint32_t>(entries.size());
    perm.resize(len);
    if (options_.lookup == FlatLookup::kEytzinger) {
      fill_eytzinger(perm, len, 1, 0);
    } else {
      for (std::uint32_t p = 0; p < len; ++p) perm[p] = p;
    }
    for (std::uint32_t p = 0; p < len; ++p) {
      const TableEntry& e = entries[perm[p]];
      const std::uint32_t idx = tbl_off_[v] + p;
      tbl_key_[idx] = e.w;
      tbl_record_[idx] = e.record;
      tbl_dist_[idx] = e.dist;
      tbl_level_[idx] = e.level;
      const TreeLabel own = table.own_label(e);
      tbl_own_dfs_[idx] = own.dfs_in;
      CROUTE_REQUIRE(tbl_light_pool_.size() < kNotFound,
                     "light-port pool exceeds the index space");
      tbl_own_light_off_[idx] =
          static_cast<std::uint32_t>(tbl_light_pool_.size());
      tbl_own_light_len_[idx] =
          static_cast<std::uint32_t>(own.light_ports.size());
      tbl_light_pool_.insert(tbl_light_pool_.end(), own.light_ports.begin(),
                             own.light_ports.end());
    }
  }

  if (options_.lookup == FlatLookup::kFKS) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> kv;
    kv.reserve(total);
    for (VertexId v = 0; v < n; ++v) {
      for (std::uint32_t idx = tbl_off_[v]; idx < tbl_off_[v + 1]; ++idx) {
        kv.emplace_back(pack_key(v, tbl_key_[idx]), idx);
      }
    }
    tbl_hash_ = PerfectHashMap::build(kv, rng);
  }
}

void FlatScheme::compile_directories(Rng& rng) {
  const VertexId n = graph().num_vertices();
  dir_off_.assign(std::size_t{n} + 1, 0);
  std::uint64_t running = 0;  // 64-bit: detect overflow before it wraps
  for (VertexId v = 0; v < n; ++v) {
    running += base_->directory(v).size();
    CROUTE_REQUIRE(running < kNotFound,
                   "directory pool exceeds the index space");
    dir_off_[v + 1] = static_cast<std::uint32_t>(running);
  }
  const std::uint32_t total = dir_off_[n];
  dir_key_.resize(total);
  dir_dfs_.resize(total);
  dir_light_off_.resize(total);
  dir_light_len_.resize(total);

  std::vector<std::uint32_t> perm;
  for (VertexId v = 0; v < n; ++v) {
    const ClusterDirectory& dir = base_->directory(v);
    const std::span<const VertexId> members = dir.members();  // sorted
    const auto len = static_cast<std::uint32_t>(members.size());
    perm.resize(len);
    if (options_.lookup == FlatLookup::kEytzinger) {
      fill_eytzinger(perm, len, 1, 0);
    } else {
      for (std::uint32_t p = 0; p < len; ++p) perm[p] = p;
    }
    for (std::uint32_t p = 0; p < len; ++p) {
      const std::uint32_t src = perm[p];
      const std::uint32_t idx = dir_off_[v] + p;
      dir_key_[idx] = members[src];
      dir_dfs_[idx] = dir.dfs_at(src);
      const std::span<const Port> ports = dir.light_ports_at(src);
      CROUTE_REQUIRE(dir_light_pool_.size() < kNotFound,
                     "light-port pool exceeds the index space");
      dir_light_off_[idx] = static_cast<std::uint32_t>(dir_light_pool_.size());
      dir_light_len_[idx] = static_cast<std::uint32_t>(ports.size());
      dir_light_pool_.insert(dir_light_pool_.end(), ports.begin(),
                             ports.end());
    }
  }

  if (options_.lookup == FlatLookup::kFKS) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> kv;
    kv.reserve(total);
    for (VertexId v = 0; v < n; ++v) {
      for (std::uint32_t idx = dir_off_[v]; idx < dir_off_[v + 1]; ++idx) {
        kv.emplace_back(pack_key(v, dir_key_[idx]), idx);
      }
    }
    dir_hash_ = PerfectHashMap::build(kv, rng);
  }
}

void FlatScheme::compile_labels() {
  const VertexId n = graph().num_vertices();
  lab_off_.assign(std::size_t{n} + 1, 0);
  std::uint64_t running = 0;  // 64-bit: detect overflow before it wraps
  for (VertexId t = 0; t < n; ++t) {
    running += base_->label(t).entries.size();
    CROUTE_REQUIRE(running < kNotFound, "label pool exceeds the index space");
    lab_off_[t + 1] = static_cast<std::uint32_t>(running);
  }
  lab_entries_.resize(lab_off_[n]);
  for (VertexId t = 0; t < n; ++t) {
    const RoutingLabel& label = base_->label(t);
    for (std::size_t j = 0; j < label.entries.size(); ++j) {
      const LabelEntry& e = label.entries[j];
      LabelEntryView& out = lab_entries_[lab_off_[t] + j];
      out.level = e.level;
      out.w = e.w;
      out.dist = e.dist;
      out.dfs_in = e.tree.dfs_in;
      CROUTE_REQUIRE(lab_light_pool_.size() < kNotFound,
                     "light-port pool exceeds the index space");
      out.light_off = static_cast<std::uint32_t>(lab_light_pool_.size());
      out.light_len = static_cast<std::uint32_t>(e.tree.light_ports.size());
      lab_light_pool_.insert(lab_light_pool_.end(), e.tree.light_ports.begin(),
                             e.tree.light_ports.end());
    }
  }
}

std::uint32_t FlatScheme::find(VertexId v, VertexId w) const noexcept {
  if (tbl_hash_) {
    const auto idx = tbl_hash_->find(pack_key(v, w));
    return idx ? *idx : kNotFound;
  }
  const std::uint32_t off = tbl_off_[v];
  const std::uint32_t len = tbl_off_[v + 1] - off;
  const std::uint32_t pos = eytzinger_find(tbl_key_.data() + off, len, w);
  return pos == len ? kNotFound : off + pos;
}

std::uint32_t FlatScheme::dir_find(VertexId v, VertexId t) const noexcept {
  if (dir_hash_) {
    const auto idx = dir_hash_->find(pack_key(v, t));
    return idx ? *idx : kNotFound;
  }
  const std::uint32_t off = dir_off_[v];
  const std::uint32_t len = dir_off_[v + 1] - off;
  const std::uint32_t pos = eytzinger_find(dir_key_.data() + off, len, t);
  return pos == len ? kNotFound : off + pos;
}

std::uint64_t FlatScheme::pool_bytes() const noexcept {
  auto bytes = [](const auto& vec) {
    return vec.size() * sizeof(typename std::decay_t<decltype(vec)>::value_type);
  };
  std::uint64_t total = bytes(tbl_off_) + bytes(tbl_key_) + bytes(tbl_record_) +
                        bytes(tbl_dist_) + bytes(tbl_level_) +
                        bytes(tbl_own_dfs_) + bytes(tbl_own_light_off_) +
                        bytes(tbl_own_light_len_) + bytes(tbl_light_pool_) +
                        bytes(dir_off_) + bytes(dir_key_) + bytes(dir_dfs_) +
                        bytes(dir_light_off_) + bytes(dir_light_len_) +
                        bytes(dir_light_pool_) + bytes(lab_off_) +
                        bytes(lab_entries_) + bytes(lab_light_pool_) +
                        bytes(bits_by_len_);
  if (tbl_hash_) total += tbl_hash_->overhead_bits() / 8;
  if (dir_hash_) total += dir_hash_->overhead_bits() / 8;
  return total;
}

FlatHeader FlatRouter::prepare(VertexId s, VertexId t,
                               RoutingPolicy policy) const {
  return prepare_resolved(s, t, flat_->label(t), policy);
}

FlatHeader FlatRouter::prepare_resolved(
    VertexId s, VertexId t, std::span<const FlatScheme::LabelEntryView> label,
    RoutingPolicy policy) const {
  const FlatScheme& f = *flat_;
  CROUTE_REQUIRE(!label.empty(), "malformed destination label");
  // Rule 0: t ∈ C(s) — one directory probe (index + payload views).
  if (policy != RoutingPolicy::kLabelOnly) {
    const std::uint32_t di = f.dir_find(s, t);
    if (di != FlatScheme::kNotFound) {
      const std::span<const Port> ports = f.dir_light_ports(di);
      return FlatHeader{t,
                        s,
                        f.dir_dfs(di),
                        ports.data(),
                        static_cast<std::uint32_t>(ports.size()),
                        f.header_bits_for(
                            static_cast<std::uint32_t>(ports.size()))};
    }
  }
  const FlatScheme::LabelEntryView* chosen = nullptr;
  if (policy != RoutingPolicy::kMinEstimate) {
    for (const FlatScheme::LabelEntryView& e : label) {
      if (f.find(s, e.w) != FlatScheme::kNotFound) {
        chosen = &e;
        break;
      }
    }
  } else {
    CROUTE_REQUIRE(f.base().options().labels_carry_distances,
                   "kMinEstimate needs labels built with "
                   "labels_carry_distances");
    Weight best = kInfiniteWeight;
    for (const FlatScheme::LabelEntryView& e : label) {
      const std::uint32_t idx = f.find(s, e.w);
      if (idx == FlatScheme::kNotFound) continue;
      const Weight estimate = f.dist(idx) + e.dist;
      if (estimate < best) {
        best = estimate;
        chosen = &e;
      }
    }
  }
  CROUTE_ASSERT(chosen != nullptr,
                "no candidate pivot found: top-level landmark missing from "
                "the source bunch");
  return FlatHeader{t,
                    chosen->w,
                    chosen->dfs_in,
                    f.label_light_pool() + chosen->light_off,
                    chosen->light_len,
                    f.header_bits_for(chosen->light_len)};
}

FlatHeader FlatRouter::prepare_handshake(VertexId s, VertexId t) const {
  const FlatScheme& f = *flat_;
  const TZPreprocessing& pre = f.base().preprocessing();
  const std::uint32_t k = f.k();
  // Bidirectional pivot walk, as TZRouter::prepare_handshake, with flat
  // membership probes.
  VertexId u = s, v = t;
  VertexId w = u;  // ŵ_0(u) = u
  std::uint32_t i = 0;
  while (f.find(v, w) == FlatScheme::kNotFound) {
    ++i;
    CROUTE_ASSERT(i < k, "handshake walk exceeded the hierarchy height");
    std::swap(u, v);
    w = pre.effective_pivot(i, u);
  }
  const std::uint32_t idx = f.find(t, w);
  CROUTE_ASSERT(idx != FlatScheme::kNotFound,
                "handshake meeting tree misses the destination");
  const std::span<const Port> ports = f.own_light_ports(idx);
  return FlatHeader{t,
                    w,
                    f.own_dfs(idx),
                    ports.data(),
                    static_cast<std::uint32_t>(ports.size()),
                    f.header_bits_for(static_cast<std::uint32_t>(ports.size()))};
}

TreeDecision FlatRouter::step(VertexId v, const FlatHeader& header) const {
  const std::uint32_t idx = flat_->find(v, header.tree_root);
  CROUTE_ASSERT(idx != FlatScheme::kNotFound,
                "packet left the routing tree: vertex has no entry for it");
  // TreeRoutingScheme::decide over non-owning label pieces.
  const TreeNodeRecord& here = flat_->record(idx);
  if (header.dfs_in == here.dfs_in) return TreeDecision{true, kNoPort};
  if (header.dfs_in < here.dfs_in || header.dfs_in >= here.dfs_out) {
    CROUTE_ASSERT(here.parent_port != kNoPort,
                  "destination outside the tree reached the root");
    return TreeDecision{false, here.parent_port};
  }
  if (header.dfs_in >= here.heavy_in && header.dfs_in < here.heavy_out &&
      here.heavy_port != kNoPort) {
    return TreeDecision{false, here.heavy_port};
  }
  CROUTE_ASSERT(here.light_depth < header.light_len,
                "label misses the light port for this branch point");
  return TreeDecision{false, header.light[here.light_depth]};
}

}  // namespace croute

/// \file incremental_rebuild.hpp
/// \brief Delta-aware TZ rebuilds that reuse untouched cluster SPTs.
///
/// Reacting to topology churn costs one full Thorup–Zwick preprocessing
/// per delta, and the churn telemetry shows that cost is dominated by the
/// landmark/cluster Dijkstras — shortest-path trees a small link delta
/// (graph/delta.hpp) leaves mostly untouched. This module rebuilds a
/// TZScheme from (previous scheme, perturbed graph, GraphDelta),
/// recomputing only what the delta invalidates, with a hard contract:
///
///   **the result is byte-identical to a from-scratch build on the same
///   seed** (tests compare save_scheme streams), so an incremental
///   generation is indistinguishable from a fresh one — the hot-swap
///   determinism contract survives unchanged.
///
/// ### What can be reused, exactly
///
/// A cluster tree T_w is the output of one restricted Dijkstra
/// (dijkstra.hpp). That run is a deterministic function of
///   (a) the arc lists of the cluster members (heads, weights, port
///       numbering — ports ARE arc indices),
///   (b) the guard values (d(A_{l+1}, ·), rank of the pivot) of every
///       member and every neighbor of a member (the guard is evaluated
///       at relaxation time, so the consulted surface is exactly
///       members ∪ neighbors(members)), and
///   (c) the center's rank — fixed, because the rank permutation depends
///       only on (seed, n).
/// Hence T_w from the previous build is verbatim-valid iff no member is
/// an endpoint of a changed edge AND no member or neighbor-of-member
/// changed its level-(l+1) pivot guard. Both are cheap vertex flags:
/// endpoint dirt comes straight from the delta's touched set, guard dirt
/// from comparing the old and new pivot arrays (recomputed each rebuild
/// — k multi-source Dijkstras are a trivial slice of preprocessing),
/// expanded by one hop of adjacency — the parent-pointer/SPT-surface
/// propagation step. Top-level trees span all of V, so any non-empty
/// delta rebuilds them; they are the irreducible floor of a rebuild.
///
/// The hierarchy itself (centered sampling) is re-run from scratch: its
/// RNG draws interleave with cluster measurements, so replaying it is
/// what keeps the byte-identity contract trivially true, and it is cheap
/// relative to the cluster sweep.
///
/// A reused tree is never re-walked: the member records are spliced out
/// of the previous scheme's vertex tables, the rule-0 directory is
/// copied wholesale (re-accounted only if the port codec widened), and
/// destination labels referencing the tree copy their tree label from
/// the previous label/directory. Invalidated roots re-run restricted
/// Dijkstra exactly as the fresh constructor would — deliberately NOT
/// seeded with boundary distances: a seeded heap has a different
/// insertion order, and insertion order is what breaks ties, so seeding
/// would produce a correct but not byte-identical tree. The sweep walks
/// centers in ascending id interleaving splices and fresh builds, so
/// every pool layout matches the fresh constructor's append order.

#pragma once

#include <cstdint>

#include "core/tz_scheme.hpp"
#include "graph/delta.hpp"

namespace croute {

/// What one incremental rebuild did — the reuse-ratio/phase-timing
/// extension the churn telemetry surfaces next to the flat-compile
/// stats.
struct IncrementalRebuildStats {
  /// True when the incremental path ran (false = full rebuild, either
  /// requested or because no compatible previous generation existed).
  bool used = false;
  /// Why the incremental path was skipped (static string, never null
  /// when !used after a build_scheme_package_incremental call).
  const char* fallback_reason = nullptr;

  // --- reuse counters (zeros when !used) ---
  std::uint64_t clusters_total = 0;
  std::uint64_t clusters_reused = 0;   ///< trees spliced verbatim
  std::uint64_t entries_spliced = 0;   ///< table entries copied, not rebuilt
  std::uint64_t entries_total = 0;
  std::uint64_t labels_copied = 0;     ///< label tree-labels copied
  std::uint64_t labels_total = 0;
  std::uint64_t fresh_settled = 0;     ///< vertices settled by re-run Dijkstras
  /// Top-level (whole-graph) trees refreshed by the boundary-seeded
  /// dynamic distance update instead of a full Dijkstra.
  std::uint64_t top_trees_updated = 0;
  /// Heap pops those dynamic updates performed (vs n per tree for a full
  /// re-run) — the "orphaned region" size the delta actually cost.
  std::uint64_t top_update_pops = 0;
  std::uint64_t changed_edges = 0;     ///< |delta| that drove the rebuild
  std::uint64_t touched_vertices = 0;

  // --- phase wall times (seconds) ---
  double diff_s = 0;      ///< graph diff (package layer)
  double pre_s = 0;       ///< rank + hierarchy sampling + pivots (fresh)
  double analysis_s = 0;  ///< dirty flags + reuse decisions
  double sweep_s = 0;     ///< splice + invalidated-root Dijkstras
  double finalize_s = 0;  ///< table/label finalization
  double total_s = 0;

  /// Fraction of cluster trees reused verbatim (0 when nothing ran).
  double reuse_ratio() const noexcept {
    return clusters_total == 0
               ? 0.0
               : static_cast<double>(clusters_reused) /
                     static_cast<double>(clusters_total);
  }
};

/// Rebuilds a scheme over \p g — the perturbed topology — reusing every
/// cluster SPT of \p previous that \p delta provably leaves untouched.
/// \p rng must carry the same seed as a fresh build would use; the
/// incremental path consumes the stream identically (rank + hierarchy
/// sampling), which is what makes the result byte-identical to
/// `TZScheme(g, options, rng)` on every input.
///
/// Requirements (checked): \p delta.n == g.num_vertices() == previous
/// graph's, and \p options match the previous scheme's construction
/// options (same k, sampling mode, hash/label switches). Callers that
/// cannot guarantee compatibility use build_scheme_package_incremental,
/// which falls back to a full build instead.
TZScheme rebuild_tz_incremental(const TZScheme& previous, const Graph& g,
                                const GraphDelta& delta,
                                const TZSchemeOptions& options, Rng& rng,
                                IncrementalRebuildStats* stats = nullptr);

}  // namespace croute

/// \file clusters.hpp
/// \brief Bunches, clusters and pivots: the shared Thorup–Zwick machinery.
///
/// Given a hierarchy A_0 ⊇ … ⊇ A_{k-1}, define for every vertex v and
/// level i the *pivot* p_i(v) — the lexicographically nearest A_i vertex —
/// and for every w ∈ A_i \ A_{i+1} (with A_k = ∅) the *cluster*
///
///   C(w) = { v : (d(w,v), rank(w)) <lex (d(A_{i+1}, v), rank(p_{i+1}(v))) }.
///
/// Clusters at the top level i = k-1 span all of V (their guard is +∞).
/// The *bunch* is the inverse relation: B(v) = { w : v ∈ C(w) }; routing
/// tables are keyed by bunches, destination labels by pivots.
///
/// ### Effective pivots
/// Under strict lexicographic comparisons, v ∈ C(p_i(v)) holds **iff**
/// p_i(v) ≠ p_{i+1}(v); when pivots repeat across levels the nearer level's
/// cluster does not contain v. The *effective* pivot for level i is
/// p_j(v) for the first j ≥ i with p_j(v) ≠ p_{j+1}(v) (or j = k-1). It
/// satisfies d(ŵ_i(v), v) = d(A_i, v) — exactly what every stretch proof
/// uses — and guarantees v ∈ C(ŵ_i(v)), which is what routing needs.
///
/// TZPreprocessing computes the hierarchy and all pivots once, and streams
/// each cluster (as a LocalTree rooted at its center, built by restricted
/// Dijkstra) to a consumer so that schemes never hold more than one
/// cluster tree in memory.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/landmarks.hpp"
#include "graph/spt.hpp"
#include "util/annotations.hpp"

namespace croute {

/// Options shared by every TZ-derived scheme.
struct PreprocessOptions {
  std::uint32_t k = 3;  ///< number of levels; stretch 2k-1 / 4k-5
  HierarchyOptions hierarchy;
};

/// Hierarchy + pivots + cluster streaming for one connected graph.
class TZPreprocessing {
 public:
  /// Runs hierarchy sampling and one multi-source Dijkstra per level.
  /// Requires a connected graph with >= 1 vertex.
  CROUTE_DETERMINISTIC TZPreprocessing(const Graph& g,
                                       const PreprocessOptions& options,
                                       Rng& rng);

  const Graph& graph() const noexcept { return *g_; }
  std::uint32_t k() const noexcept { return hierarchy_.k; }
  const LandmarkHierarchy& hierarchy() const noexcept { return hierarchy_; }
  const std::vector<std::uint32_t>& rank() const noexcept { return rank_; }

  /// Level of w as a cluster center: the max i with w ∈ A_i.
  std::uint32_t center_level(VertexId w) const {
    return hierarchy_.level_of[w];
  }

  /// p_i(v): the lexicographically nearest A_i vertex to v.
  CROUTE_HOT VertexId pivot(std::uint32_t level, VertexId v) const {
    return pivots_[level].owner[v];
  }
  /// d(A_i, v).
  Weight pivot_dist(std::uint32_t level, VertexId v) const {
    return pivots_[level].dist[v];
  }

  /// The effective pivot level for (level, v): the first j >= level with
  /// p_j(v) != p_{j+1}(v), or k-1. v ∈ C(p_j(v)) is guaranteed.
  CROUTE_HOT std::uint32_t effective_level(std::uint32_t level,
                                           VertexId v) const;

  /// Effective pivot ŵ_level(v) (see file comment).
  CROUTE_HOT VertexId effective_pivot(std::uint32_t level, VertexId v) const {
    return pivot(effective_level(level, v), v);
  }

  /// The lexicographic guard used by C(w) for a center at \p level:
  /// (d(A_{level+1}, v), rank(p_{level+1}(v))), or +∞ at the top level.
  LexDist cluster_guard(std::uint32_t level, VertexId v) const {
    if (level + 1 >= k()) return LexDist{};
    return LexDist{pivots_[level + 1].dist[v],
                   rank_[pivots_[level + 1].owner[v]]};
  }

  /// Builds C(w) as a LocalTree (shortest-path tree rooted at w, exact
  /// distances). members/ports per spt.hpp. w itself is always included.
  LocalTree build_cluster(VertexId w) const;

  /// Streams every cluster in ascending center id: consumer(w, tree).
  /// Sequential; sub-top-level clusters share one restricted-Dijkstra
  /// workspace, while each top-level center (whole-graph cluster) runs a
  /// plain Dijkstra and the canonical tree construction
  /// (make_canonical_spt). The incremental rebuilder
  /// (core/incremental_rebuild.hpp) replays this exact sweep order
  /// through the public pieces, re-running Dijkstra only from
  /// invalidated roots.
  void for_each_cluster(
      const std::function<void(VertexId, const LocalTree&)>& consumer) const;

  /// |C(w)| for every w (cheap pass without tree construction).
  std::vector<std::uint32_t> cluster_sizes() const;

 private:
  friend class SchemeSerializer;
  friend class TZScheme;  // default-constructs pre_ during deserialization
  friend class IncrementalRebuilder;  // moves a fresh pre_ into the scheme
  TZPreprocessing() = default;

  const Graph* g_ = nullptr;
  std::vector<std::uint32_t> rank_;
  LandmarkHierarchy hierarchy_;
  std::vector<MultiSourceResult> pivots_;  ///< one per level
};

}  // namespace croute

#include "core/incremental_rebuild.hpp"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "core/tz_build.hpp"
#include "util/dheap.hpp"

namespace croute {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// How one changed edge can affect a distance field.
enum class ChangeKind : std::uint8_t {
  kOrphaning,  ///< removed or weight-increased: invalidates old paths using it
  kImproving,  ///< added or weight-decreased: may shorten paths
};

struct EdgeChangeRef {
  VertexId u, v;
  ChangeKind kind;
};

/// Recomputes the exact distance field of one top-level (whole-graph)
/// tree after a delta, reusing every still-valid previous distance. The
/// ISSUE mechanism, literally: re-run Dijkstra only over the region the
/// delta orphans, seeded with the still-valid boundary distances.
///
/// Exactness: non-orphan labels keep their previous value, which is a
/// valid upper bound (their old tree path survives intact), and every
/// vertex whose label must change is reachable through a seeded
/// relaxation chain — orphans through a seeded non-orphan boundary
/// neighbor, improvement waves through the seeded endpoints of
/// added/decreased edges. Positive weights make the resulting fixpoint
/// the unique Bellman solution, computed with the same floating-point
/// expressions a from-scratch Dijkstra uses — so the field is not just
/// equal, it is bitwise identical, which is what the canonical tree
/// construction (make_canonical_spt) needs for byte-identity.
class TopTreeUpdater {
 public:
  TopTreeUpdater(const Graph& g_old, const Graph& g_new,
                 const GraphDelta& delta, VertexId n)
      : g_old_(&g_old),
        g_new_(&g_new),
        heap_(n),
        dist_(n, kInfiniteWeight),
        parent_(n, kNoVertex),
        child_off_(std::size_t{n} + 2, 0),
        child_(n),
        orphan_(n, 0) {
    changes_.reserve(delta.changed_edges());
    for (const auto& [u, v] : delta.removed) {
      changes_.push_back({u, v, ChangeKind::kOrphaning});
    }
    for (const auto& [u, v] : delta.added) {
      changes_.push_back({u, v, ChangeKind::kImproving});
    }
    for (const EdgeReweight& r : delta.reweighted) {
      changes_.push_back({r.u, r.v,
                          r.new_weight > r.old_weight
                              ? ChangeKind::kOrphaning
                              : ChangeKind::kImproving});
    }
  }

  /// Updates and returns the distance field of center \p w. The returned
  /// reference is valid until the next update() call.
  const std::vector<Weight>& update(
      VertexId w,
      const std::vector<std::pair<VertexId, const TableEntry*>>& members,
      IncrementalRebuildStats& stats) {
    const VertexId n = g_new_->num_vertices();
    CROUTE_ASSERT(members.size() == n,
                  "a top-level cluster spans every vertex");
    // Previous distances and parents (ports decode against the OLD
    // graph — the tree was built over it).
    for (const auto& [v, entry] : members) {
      dist_[v] = entry->dist;
      parent_[v] = entry->record.parent_port == kNoPort
                       ? kNoVertex
                       : g_old_->neighbor(v, entry->record.parent_port);
    }
    CROUTE_ASSERT(parent_[w] == kNoVertex, "center must be the tree root");

    // Children lists (counting sort by parent), then orphan the subtree
    // under every tree edge the delta removed or increased.
    std::fill(child_off_.begin(), child_off_.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (parent_[v] != kNoVertex) ++child_off_[parent_[v] + 2];
    }
    for (std::size_t i = 2; i < child_off_.size(); ++i) {
      child_off_[i] += child_off_[i - 1];
    }
    for (VertexId v = 0; v < n; ++v) {
      if (parent_[v] != kNoVertex) child_[child_off_[parent_[v] + 1]++] = v;
    }

    orphan_roots_.clear();
    auto orphan_if_tree_edge = [&](VertexId a, VertexId b) {
      if (parent_[a] == b) orphan_roots_.push_back(a);
      if (parent_[b] == a) orphan_roots_.push_back(b);
    };
    for (const EdgeChangeRef& c : changes_) {
      if (c.kind == ChangeKind::kOrphaning) orphan_if_tree_edge(c.u, c.v);
    }
    queue_.clear();
    for (const VertexId r : orphan_roots_) {
      if (!orphan_[r]) {
        orphan_[r] = 1;
        queue_.push_back(r);
      }
    }
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const VertexId v = queue_[head];
      for (std::uint32_t c = child_off_[v]; c < child_off_[v + 1]; ++c) {
        if (!orphan_[child_[c]]) {
          orphan_[child_[c]] = 1;
          queue_.push_back(child_[c]);
        }
      }
    }

    // Seed: still-valid boundary distances around the orphaned region,
    // plus the endpoints of improving edges.
    heap_.clear();
    for (const VertexId x : queue_) {
      dist_[x] = kInfiniteWeight;
      for (const Arc& a : g_new_->arcs(x)) {
        if (!orphan_[a.head]) heap_.push_or_decrease(a.head, dist_[a.head]);
      }
    }
    for (const EdgeChangeRef& c : changes_) {
      if (c.kind != ChangeKind::kImproving) continue;
      if (!orphan_[c.u]) heap_.push_or_decrease(c.u, dist_[c.u]);
      if (!orphan_[c.v]) heap_.push_or_decrease(c.v, dist_[c.v]);
    }

    // Dijkstra over the affected region (label improvements re-enter the
    // heap; everything untouched keeps its previous exact label).
    while (!heap_.empty()) {
      const VertexId v = heap_.pop();
      ++stats.top_update_pops;
      const Weight dv = dist_[v];
      for (const Arc& a : g_new_->arcs(v)) {
        const Weight cand = dv + a.weight;
        if (cand < dist_[a.head]) {
          dist_[a.head] = cand;
          heap_.push_or_decrease(a.head, cand);
        }
      }
    }

    // Reset scratch for the next center (orphan flags + parents).
    for (const VertexId x : queue_) {
      CROUTE_ASSERT(dist_[x] < kInfiniteWeight,
                    "orphaned vertex unreachable after update (the delta "
                    "must keep the graph connected)");
      orphan_[x] = 0;
    }
    return dist_;
  }

 private:
  const Graph* g_old_;
  const Graph* g_new_;
  std::vector<EdgeChangeRef> changes_;
  DHeap<Weight> heap_;
  std::vector<Weight> dist_;
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> child_off_;  ///< n+2 prefix offsets
  std::vector<VertexId> child_;
  std::vector<std::uint8_t> orphan_;
  std::vector<VertexId> orphan_roots_;
  std::vector<VertexId> queue_;
};

}  // namespace

/// Friend of TZScheme / TZPreprocessing / VertexTable / ClusterDirectory:
/// fills a scheme from a mix of spliced previous-generation state and
/// freshly rebuilt invalidated trees.
class IncrementalRebuilder {
 public:
  static TZScheme rebuild(const TZScheme& prev, const Graph& g,
                          const GraphDelta& delta,
                          const TZSchemeOptions& options, Rng& rng,
                          IncrementalRebuildStats& stats) {
    const auto t_total = clock::now();
    const VertexId n = g.num_vertices();
    CROUTE_REQUIRE(delta.n == n, "delta was computed for a different graph");
    CROUTE_REQUIRE(prev.graph().num_vertices() == n,
                   "incremental rebuild requires a fixed vertex set");
    CROUTE_REQUIRE(prev.k() == options.pre.k,
                   "incremental rebuild requires an unchanged k");

    stats.used = true;
    stats.changed_edges = delta.changed_edges();
    stats.touched_vertices = delta.touched.size();

    TZScheme out;
    out.g_ = &g;
    out.options_ = options;

    // ---- fresh preprocessing: rank + hierarchy sampling + pivots.
    // Consumes the RNG stream exactly as a from-scratch build would —
    // the hierarchy draws interleave with cluster measurements, so
    // re-running them is what keeps byte-identity unconditional.
    const auto t_pre = clock::now();
    out.pre_ = TZPreprocessing(g, options.pre, rng);
    stats.pre_s = seconds_since(t_pre);
    const TZPreprocessing& pre = out.pre_;
    const TZPreprocessing& old_pre = prev.preprocessing();
    CROUTE_REQUIRE(pre.rank() == old_pre.rank(),
                   "incremental rebuild requires the previous seed "
                   "(rank permutations differ)");
    const std::uint32_t k = pre.k();
    const std::uint32_t id_bits = bits_for_universe(n);
    out.tree_codec_ = TreeRoutingScheme::Codec(n, g.max_degree());
    out.codec_ = LabelCodec(n, g.max_degree(), options.labels_carry_distances);
    const bool codec_equal =
        out.tree_codec_.dfs_bits == prev.tree_codec().dfs_bits &&
        out.tree_codec_.port_bits == prev.tree_codec().port_bits;

    // ---- label skeletons: the exact fresh-constructor pass
    // (core/tz_build.hpp — shared so the byte-identity contract cannot
    // drift).
    const tz_build::NeededLabels needed =
        tz_build::label_skeletons(pre, out.labels_);

    // ---- dirty analysis: which previous trees stay verbatim-valid.
    const auto t_analysis = clock::now();

    // Endpoints of changed edges: their arc lists (weights and port
    // numbering) differ between the graphs, so no tree containing one
    // can be reused.
    std::vector<std::uint8_t> incident(n, 0);
    for (const VertexId v : delta.touched) incident[v] = 1;

    // Per level 1..k-1: the guard (d(A_i, v), rank of p_i(v)) changed at
    // v or at a neighbor of v. The restricted run consults guards of
    // members and, at relaxation time, of members' neighbors, so one hop
    // of adjacency expansion makes the per-member flag sufficient.
    std::vector<std::vector<std::uint8_t>> guard_dirty(k);
    std::vector<std::uint8_t> base(n, 0);
    for (std::uint32_t i = 1; i < k; ++i) {
      for (VertexId v = 0; v < n; ++v) {
        base[v] = old_pre.pivot(i, v) != pre.pivot(i, v) ||
                  old_pre.pivot_dist(i, v) != pre.pivot_dist(i, v);
      }
      std::vector<std::uint8_t>& expanded = guard_dirty[i];
      expanded.assign(n, 0);
      for (VertexId v = 0; v < n; ++v) {
        if (base[v]) {
          expanded[v] = 1;
          continue;
        }
        for (const Arc& a : g.arcs(v)) {
          if (base[a.head]) {
            expanded[v] = 1;
            break;
          }
        }
      }
    }

    // Previous member lists: invert the previous tables once. A table
    // entry of v keyed by w IS membership v ∈ C_prev(w), record included.
    std::vector<std::vector<std::pair<VertexId, const TableEntry*>>>
        prev_members(n);
    for (VertexId v = 0; v < n; ++v) {
      for (const TableEntry& e : prev.table(v).entries()) {
        prev_members[e.w].emplace_back(v, &e);
      }
    }

    // Reuse decision per center.
    std::vector<std::uint8_t> reuse(n, 0);
    for (VertexId w = 0; w < n; ++w) {
      const std::uint32_t level = pre.center_level(w);
      if (level != old_pre.center_level(w)) continue;
      const std::vector<std::uint8_t>* dirty =
          level + 1 < k ? &guard_dirty[level + 1] : nullptr;
      bool ok = true;
      for (const auto& [v, entry] : prev_members[w]) {
        (void)entry;
        if (incident[v] || (dirty != nullptr && (*dirty)[v])) {
          ok = false;
          break;
        }
      }
      // Labels referencing a reused tree copy their tree label from the
      // previous scheme. Level-0 directories cover every member; higher
      // levels need the previous label of t to reference T_w too.
      if (ok && level > 0) {
        for (const auto& [t, idx] : needed[w]) {
          (void)idx;
          if (find_tree_label(prev, t, w, level) == nullptr) {
            ok = false;
            break;
          }
        }
      }
      reuse[w] = ok ? 1 : 0;
    }
    stats.analysis_s = seconds_since(t_analysis);
    stats.clusters_total = n;
    stats.labels_total = 0;
    for (VertexId w = 0; w < n; ++w) {
      stats.labels_total += needed[w].size();
      if (reuse[w]) ++stats.clusters_reused;
    }

    // ---- sweep: ascending center id, splices and re-run Dijkstras
    // interleaved so pool append order equals the fresh constructor's.
    const auto t_sweep = clock::now();
    std::vector<tz_build::PendingTable> pending(n);
    for (VertexId v = 0; v < n; ++v) {
      // The new table's shape is close to the previous one's — reserve
      // so interleaved splices don't pay reallocation churn.
      pending[v].entries.reserve(prev.table(v).size() + 2);
    }
    std::vector<std::uint8_t> fresh_contrib(n, 0);
    out.dirs_.resize(n);
    RestrictedDijkstra rd(g);
    TopTreeUpdater top_updater(prev.graph(), g, delta, n);
    // A boundary-seeded update beats a full Dijkstra only while the
    // orphaned region is a minority of the graph; on dense deltas the
    // bookkeeping costs more than it saves (the bytes are identical
    // either way — this is purely a cost cutover).
    const bool dynamic_top = delta.touched.size() * 8 < std::size_t{n};
    std::unordered_map<VertexId, std::uint32_t> local_index;

    // The fresh-construction consumer — the SAME code the fresh
    // constructor runs (core/tz_build.hpp), so the spliced and rebuilt
    // halves cannot drift apart.
    const auto consume_fresh = [&](VertexId w, std::uint32_t level,
                                   const LocalTree& tree) {
      tz_build::consume_cluster(w, level, tree, out.tree_codec_, id_bits,
                                pending, out.dirs_, out.labels_, needed,
                                local_index, &fresh_contrib);
    };

    for (VertexId w = 0; w < n; ++w) {
      const std::uint32_t level = pre.center_level(w);
      if (reuse[w]) {
        for (const auto& [v, entry] : prev_members[w]) {
          tz_build::PendingTable& pt = pending[v];
          TableEntry e = *entry;
          const auto ports = prev.table(v).own_light_ports(*entry);
          e.light_off = static_cast<std::uint32_t>(pt.light_pool.size());
          e.light_len = static_cast<std::uint32_t>(ports.size());
          pt.light_pool.insert(pt.light_pool.end(), ports.begin(),
                               ports.end());
          pt.entries.push_back(std::move(e));
          ++stats.entries_spliced;
        }
        if (level == 0) {
          out.dirs_[w] = prev.directory(w);
          if (!codec_equal) reaccount_directory(out.dirs_[w], out, id_bits);
        }
        for (const auto& [t, idx] : needed[w]) {
          const TreeLabel* copied = find_tree_label(prev, t, w, level);
          CROUTE_ASSERT(copied != nullptr,
                        "reuse decision guaranteed the previous tree label");
          out.labels_[t].entries[idx].tree = *copied;
          ++stats.labels_copied;
        }
        continue;
      }

      if (level + 1 >= k && dynamic_top &&
          old_pre.center_level(w) == level && prev_members[w].size() == n) {
        // Invalidated top-level tree: its membership is all of V, so only
        // the distance field needs recomputing — re-run Dijkstra over the
        // delta's orphaned region seeded with still-valid boundary
        // distances, then rebuild the canonical tree (a pure function of
        // the distances — see make_canonical_spt) exactly as the fresh
        // path does.
        const std::vector<Weight>& d =
            top_updater.update(w, prev_members[w], stats);
        consume_fresh(w, level, make_canonical_spt(g, w, d));
        ++stats.top_trees_updated;
        continue;
      }
      if (level + 1 >= k) {
        // Top-level center without a same-shape previous tree (its level
        // changed, or the previous hierarchy differs): fresh path.
        consume_fresh(w, level, make_canonical_spt(g, w, dijkstra(g, w).dist));
        stats.fresh_settled += n;
        continue;
      }

      // Invalidated root below the top level: the exact
      // fresh-construction path (a seeded heap would break the
      // byte-identity tie-breaking contract; these runs are bounded by
      // their cluster size anyway).
      auto guard_fn = [&](VertexId v) { return pre.cluster_guard(level, v); };
      const LocalTree tree =
          make_local_tree(rd.run(w, pre.rank()[w], guard_fn));
      stats.fresh_settled += tree.size();
      consume_fresh(w, level, tree);
    }
    stats.sweep_s = seconds_since(t_sweep);

    // ---- finalize tables. A vertex whose every entry was spliced (and
    // whose previous table has the same entry count, i.e. no tree it
    // belonged to went away) gets the previous finalized table verbatim
    // — same sorted entries, same pool layout, same accounted bits.
    const auto t_finalize = clock::now();
    out.tables_.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      stats.entries_total += pending[v].entries.size();
      if (codec_equal && !options.hash_index && !fresh_contrib[v] &&
          prev.table(v).size() == pending[v].entries.size() &&
          !prev.table(v).has_hash_index()) {
        out.tables_.push_back(prev.table(v));
        continue;
      }
      out.tables_.emplace_back(std::move(pending[v].entries),
                               std::move(pending[v].light_pool),
                               out.tree_codec_, id_bits);
      if (options.hash_index) out.tables_.back().build_hash_index(rng);
    }
    stats.finalize_s = seconds_since(t_finalize);
    stats.total_s = seconds_since(t_total);
    return out;
  }

 private:
  /// Tree label of \p t in the reused tree T_w, looked up in the
  /// previous scheme: any previous label entry referencing T_w carries
  /// it, and level-0 centers additionally keep every member's label in
  /// their directory. Returns nullptr when the previous scheme never
  /// materialized it (which the reuse decision treats as "rebuild w").
  static const TreeLabel* find_tree_label(const TZScheme& prev, VertexId t,
                                          VertexId w, std::uint32_t level) {
    for (const LabelEntry& e : prev.label(t).entries) {
      if (e.w == w) return &e.tree;
    }
    if (level == 0) {
      const ClusterDirectory& dir = prev.directory(w);
      const std::uint32_t idx = dir.find_index(t);
      if (idx != ClusterDirectory::kNoIndex) {
        // Directory labels are pool-flattened; materialize lazily into
        // a per-call scratch that lives until the next call.
        thread_local TreeLabel scratch;
        scratch = dir.label_at(idx);
        return &scratch;
      }
    }
    return nullptr;
  }

  /// Recomputes a copied directory's accounted bit size under the new
  /// codec (only needed when the port width changed — dfs width is a
  /// function of n, which link churn keeps fixed).
  static void reaccount_directory(ClusterDirectory& dir, const TZScheme& out,
                                  std::uint32_t id_bits) {
    dir.bit_size_ = 0;
    for (std::uint32_t i = 0; i < dir.size(); ++i) {
      dir.bit_size_ +=
          id_bits + TreeRoutingScheme::label_bits(
                        dir.light_off_[i + 1] - dir.light_off_[i],
                        out.tree_codec_);
    }
  }
};

CROUTE_DETERMINISTIC TZScheme rebuild_tz_incremental(const TZScheme& previous,
                                                     const Graph& g,
                                const GraphDelta& delta,
                                const TZSchemeOptions& options, Rng& rng,
                                IncrementalRebuildStats* stats) {
  IncrementalRebuildStats local;
  IncrementalRebuildStats& s = stats != nullptr ? *stats : local;
  return IncrementalRebuilder::rebuild(previous, g, delta, options, rng, s);
}

}  // namespace croute

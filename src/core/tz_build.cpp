#include "core/tz_build.hpp"

#include "core/clusters.hpp"

namespace croute {
namespace tz_build {

CROUTE_DETERMINISTIC NeededLabels label_skeletons(const TZPreprocessing& pre,
                             std::vector<RoutingLabel>& labels) {
  const VertexId n = pre.graph().num_vertices();
  const std::uint32_t k = pre.k();
  labels.resize(n);
  NeededLabels needed(n);
  for (VertexId t = 0; t < n; ++t) {
    RoutingLabel& label = labels[t];
    label.t = t;
    VertexId last_pivot = kNoVertex;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t j = pre.effective_level(i, t);
      const VertexId w = pre.pivot(j, t);
      CROUTE_ASSERT(w != kNoVertex, "missing pivot on a connected graph");
      if (w == last_pivot) continue;  // same run
      last_pivot = w;
      LabelEntry e;
      e.level = i;
      e.w = w;
      e.dist = pre.pivot_dist(i, t);  // == pivot_dist(j, t) along the run
      label.entries.push_back(std::move(e));
      needed[w].emplace_back(
          t, static_cast<std::uint32_t>(label.entries.size() - 1));
    }
  }
  return needed;
}

CROUTE_DETERMINISTIC void consume_cluster(VertexId w, std::uint32_t level,
                                          const LocalTree& tree,
                     const TreeRoutingScheme::Codec& tree_codec,
                     std::uint32_t id_bits,
                     std::vector<PendingTable>& pending,
                     std::vector<ClusterDirectory>& dirs,
                     std::vector<RoutingLabel>& labels,
                     const NeededLabels& needed,
                     std::unordered_map<VertexId, std::uint32_t>&
                         local_index_scratch,
                     std::vector<std::uint8_t>* fresh_contrib) {
  const TreeRoutingScheme trs(tree);
  // Rule-0 directories exist only for level-0 centers. For a landmark
  // source s ∈ A_1 the rule-0 certificate d(t, A_1) ≤ d(s, t) holds
  // trivially (s itself is in A_1), so its directory may be empty —
  // and must be, or top-level centers (C(w) = V) would store Θ(n log n)
  // bits and break the paper's Õ(n^{1/k}) per-vertex table bound.
  if (level == 0) {
    dirs[w] = ClusterDirectory(tree, trs, tree_codec, id_bits);
  }
  for (std::uint32_t i = 0; i < tree.size(); ++i) {
    const VertexId v = tree.global[i];
    PendingTable& pt = pending[v];
    TableEntry e;
    e.w = w;
    e.level = level;
    e.dist = tree.dist[i];
    e.record = trs.record(i);
    const TreeLabel& own = trs.label(i);
    e.light_off = static_cast<std::uint32_t>(pt.light_pool.size());
    e.light_len = static_cast<std::uint32_t>(own.light_ports.size());
    pt.light_pool.insert(pt.light_pool.end(), own.light_ports.begin(),
                         own.light_ports.end());
    pt.entries.push_back(std::move(e));
    if (fresh_contrib != nullptr) (*fresh_contrib)[v] = 1;
  }
  if (!needed[w].empty()) {
    local_index_scratch.clear();
    for (std::uint32_t i = 0; i < tree.size(); ++i) {
      local_index_scratch.emplace(tree.global[i], i);
    }
    for (const auto& [t, entry_idx] : needed[w]) {
      const auto it = local_index_scratch.find(t);
      CROUTE_ASSERT(it != local_index_scratch.end(),
                    "label references a tree that misses its destination "
                    "(effective-pivot invariant violated)");
      labels[t].entries[entry_idx].tree = trs.label(it->second);
    }
  }
}

}  // namespace tz_build
}  // namespace croute

/// \file flat_batch.hpp
/// \brief Batch-pipelined decision engine: G in-flight route descents in a
/// software pipeline with explicit prefetching.
///
/// The flat serving path (core/flat_scheme.hpp) made every query-path
/// structure a pooled array — but a single query still issues one
/// *dependent* cache-miss chain: offset entry → key slice → payload record
/// → graph arc, one load waiting on the previous. On the table sizes the
/// paper's space bound produces, nearly every link of that chain misses
/// cache, so the scalar decision is bounded by memory latency, not by
/// memory bandwidth — the core has room for many outstanding misses and
/// the scalar loop uses one.
///
/// This engine runs G ≈ 8–16 *independent* queries' descents interleaved
/// (the classic batched-Eytzinger / group-prefetch technique): each lane
/// is a tiny state machine whose stage boundaries sit exactly where the
/// next dependent load would stall, and every stage ends by issuing
/// a prefetch (CROUTE_PREFETCH) for the memory its *next* stage will
/// read. While
/// lane A's line travels from DRAM, lanes B…G execute their stages, so up
/// to G misses are in flight instead of one. Answers are byte-identical
/// to the scalar FlatRouter/FlatCowen/FlatFullTable path — the stages
/// reorder only *when* a line is fetched, never what is computed
/// (tests/test_flat_scheme.cpp proves equality over every scheme kind,
/// lookup layout and group size, ragged tails and self-queries included).
///
/// Stage map per hop of the Thorup–Zwick walk at vertex v:
///   kStepMeta    read CSR offsets (prefetched on arrival), prefetch the
///                key slice's lines / the FKS slot;
///   kStepProbe   branch-free descent or slot compare → pool index,
///                prefetch the node record;
///   kStepDecide  O(1) tree decision over the record, prefetch the arc;
///   kStepAdvance traverse the arc, prefetch the next vertex's offsets.
/// Prepare (rule-0 directory probe + label pivot scan), the handshake's
/// bidirectional pivot walk, and the Cowen/full-table per-hop reads are
/// staged the same way.
///
/// The probe stages are *vectorized* (src/simd/): each round compacts
/// the live lanes' probes into SoA scratch arrays and resolves them in
/// one lane-parallel kernel call — the Eytzinger compare-and-step runs
/// across 8 lanes per AVX2 register (masked gathers keep retired lanes
/// off memory), the FKS slot check gathers 4 slot keys at once, and the
/// generic implementation is the exact scalar loop, so answers stay
/// byte-identical on every ISA (tests/test_simd.cpp pins the matrix).
///
/// Scheduling is *lockstep*: queries run in generations of G lanes, and
/// each pipeline stage is one tight loop over the live lanes (compact
/// index list; delivered lanes drop out). Adjacent loop iterations are
/// independent, so the out-of-order core overlaps their loads even
/// before the explicit prefetches land — the control cost per stage is a
/// predictable loop branch, not a per-lane state dispatch. Lanes that
/// finish a phase early (shorter label scan, earlier delivery) idle
/// until their generation drains; the next generation then refills all
/// lanes.
///
/// The engine is scalar state + scratch: one instance per worker thread,
/// reused across batches (no allocation once warm). RouteService routes
/// its destination-grouped chunks through per-worker engines; route_one
/// and `batch_group = 0` keep the scalar path.

#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "core/flat_scheme.hpp"
#include "sim/packet.hpp"
#include "util/annotations.hpp"

namespace croute {

/// Which serving algorithm the engine pipelines (mirrors the service's
/// SchemeKind without depending on the service layer).
enum class FlatServeKind {
  kTZDirect,     ///< prepare (rule 0 + label scan) + tree walk
  kTZHandshake,  ///< bidirectional pivot walk + tree walk
  kCowen,        ///< cluster probe / home-landmark forwarding
  kFullTable,    ///< exact next-hop matrix
};

/// What the engine routes against: one immutable generation's flat views.
/// The member matching \p kind must be set (flat for the TZ kinds, cowen
/// for kCowen, full for kFullTable); graph always.
struct FlatBatchTarget {
  const Graph* graph = nullptr;
  FlatServeKind kind = FlatServeKind::kTZDirect;
  RoutingPolicy policy = RoutingPolicy::kMinLevel;  ///< kTZDirect only
  const FlatScheme* flat = nullptr;
  const FlatCowen* cowen = nullptr;
  const FlatFullTable* full = nullptr;
  /// Hop budget; 0 = the serving default 4n + 16.
  std::uint32_t max_hops = 0;
};

/// One query. For kTZDirect \p label must be the destination's resolved
/// label (the service's per-batch memo resolves each distinct t once).
struct FlatBatchQuery {
  VertexId s = kNoVertex;
  VertexId t = kNoVertex;
  std::span<const FlatScheme::LabelEntryView> label;
  /// Base of the light-port pool the label's light_off fields index.
  /// nullptr = the scheme's own pool (pooled labels); a wire-decoded
  /// label points this at its batch-owned port buffer instead.
  const Port* light_pool = nullptr;
};

/// One answer. The deterministic fields (status, length, hops,
/// header_bits, path) are byte-identical to the scalar serving path;
/// latency_us is the query's amortized share of its pipeline
/// generation's wall time (G queries run interleaved — per-lane wall
/// time would charge every lane for all G).
struct FlatBatchAnswer {
  RouteStatus status = RouteStatus::kHopLimit;
  Weight length = 0;
  std::uint32_t hops = 0;
  std::uint64_t header_bits = 0;
  double latency_us = 0;
  std::uint32_t path_off = 0;  ///< slice into the caller's path arena
  std::uint32_t path_len = 0;
  // --- decide() extras (unset by route()): the first source decision ---
  VertexId tree_root = kNoVertex;  ///< chosen tree (TZ kinds)
  bool first_deliver = false;
  Port first_port = kNoPort;
};

/// Sampled pipeline-occupancy counters (see set_stats_sample_every).
/// Plain members of a per-worker engine: the owning thread writes them,
/// anyone else reads only across a synchronization edge (RouteService's
/// driver reads after the pool join).
struct FlatBatchStats {
  std::uint64_t generations = 0;  ///< sampled generations
  std::uint64_t lanes = 0;        ///< lanes those generations carried
  /// Useful per-hop pipeline slots: Σ over sampled lanes of their hop
  /// count (each hop occupies one slot of every stage loop).
  std::uint64_t lane_hops = 0;
  /// Issued slots: Σ over sampled generations of lanes × the longest
  /// lane's hops — a lane that retires early leaves its remaining slots
  /// idle until the generation drains.
  std::uint64_t slots = 0;

  /// Fraction of issued pipeline slots doing useful work (0 when no
  /// generation was sampled). Low occupancy means skewed lane lengths —
  /// the pipeline drains half-empty and loses memory-level parallelism.
  double occupancy() const noexcept {
    return slots > 0
               ? static_cast<double>(lane_hops) / static_cast<double>(slots)
               : 0;
  }
};

/// The pipelined engine. Holds only scratch (lane array, per-lane path
/// buffers): keep one instance per worker thread and reuse it across
/// batches. Not thread-safe; distinct instances are independent.
class FlatBatchEngine {
 public:
  explicit FlatBatchEngine(std::uint32_t group = 8)
      : group_(group == 0 ? 1 : group) {}

  std::uint32_t group() const noexcept { return group_; }

  /// Samples every \p n-th generation into stats() (0 — the default —
  /// disables sampling entirely). Sampling reads the generation's
  /// finished answers after it drains; the stage loops are untouched, so
  /// routed bytes are identical with sampling on or off.
  void set_stats_sample_every(std::uint32_t n) noexcept {
    stats_sample_every_ = n;
  }
  const FlatBatchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = FlatBatchStats{}; }

  /// Routes queries[i] → answers[i], every query to completion, G lanes
  /// in flight. When \p path_arena is non-null each query's visited
  /// vertices are appended to it (contiguous per query, in completion
  /// order) and answers[i].path_off/path_len index the slice.
  CROUTE_HOT void route(const FlatBatchTarget& target,
                        std::span<const FlatBatchQuery> queries,
                        std::span<FlatBatchAnswer> answers,
                        std::vector<VertexId>* path_arena = nullptr);

  /// The micro-bench op: only the *source decision* — prepare plus the
  /// first per-hop step — batched. Fills status/header_bits and the
  /// decide() extras; no edges are traversed.
  CROUTE_HOT void decide(const FlatBatchTarget& target,
                         std::span<const FlatBatchQuery> queries,
                         std::span<FlatBatchAnswer> answers);

 private:
  struct Lane {
    std::uint32_t qi = 0;
    VertexId s = kNoVertex, t = kNoVertex, here = kNoVertex;
    // header under construction / in use
    VertexId root = kNoVertex;
    std::uint32_t dfs_in = 0;
    const Port* light = nullptr;
    std::uint32_t light_len = 0;
    std::uint64_t bits = 0;
    // staged probe
    FlatScheme::FindProbe probe;
    std::uint32_t pool_idx = 0;
    // TZ label scan
    const FlatScheme::LabelEntryView* lab_it = nullptr;
    const FlatScheme::LabelEntryView* lab_end = nullptr;
    const FlatScheme::LabelEntryView* lab_best = nullptr;
    const Port* lab_pool = nullptr;  ///< light-port pool of this label
    Weight best_est = 0;
    // handshake walk
    VertexId hs_u = kNoVertex, hs_v = kNoVertex, hs_w = kNoVertex;
    std::uint32_t hs_i = 0;
    bool hs_done = false;
    // Cowen label
    FlatCowen::Label cl;
    // walk
    Weight length = 0;
    std::uint32_t hops = 0;
    Port port = kNoPort;
    bool deliver = false;
    std::vector<VertexId>* path = nullptr;  ///< into lane_paths_, or null
  };

  void run(const FlatBatchTarget& target,
           std::span<const FlatBatchQuery> queries,
           std::span<FlatBatchAnswer> answers,
           std::vector<VertexId>* path_arena, bool decisions_only);

  /// One generation: lanes_[0..m) are live as live_[0..live_count_).
  void run_generation(const FlatBatchTarget& target,
                      std::span<FlatBatchAnswer> answers,
                      std::vector<VertexId>* path_arena,
                      bool decisions_only, std::uint32_t max_hops);

  // Lockstep phases (each is one loop over the live lanes).
  void prepare_tz_direct(const FlatBatchTarget& target,
                         std::span<FlatBatchAnswer> answers);
  void prepare_tz_handshake(const FlatBatchTarget& target);
  void walk_tz(const FlatBatchTarget& target,
               std::span<FlatBatchAnswer> answers,
               std::vector<VertexId>* path_arena, bool decisions_only,
               std::uint32_t max_hops);
  void walk_cowen(const FlatBatchTarget& target,
                  std::span<FlatBatchAnswer> answers,
                  std::vector<VertexId>* path_arena, bool decisions_only,
                  std::uint32_t max_hops);
  void walk_full(const FlatBatchTarget& target,
                 std::span<FlatBatchAnswer> answers,
                 std::vector<VertexId>* path_arena, bool decisions_only,
                 std::uint32_t max_hops);

  CROUTE_HOT void finish(Lane& lane, FlatBatchAnswer& answer,
                         RouteStatus status,
                         std::vector<VertexId>* path_arena) const;
  /// Drops live_[pos] from the live list (swap-with-last).
  CROUTE_HOT void retire(std::uint32_t pos) {
    live_[pos] = live_[--live_count_];
  }
  /// Warms the lane/scan/probe scratch to group_ capacity. All resizes
  /// are no-ops after the engine's first batch (capacity persists), so
  /// the stage loops themselves never allocate.
  void ensure_scratch(bool want_paths);

  std::uint32_t group_;
  std::uint32_t stats_sample_every_ = 0;  ///< 0 = sampling off
  std::uint64_t gen_seq_ = 0;             ///< generations since construction
  FlatBatchStats stats_;
  std::vector<Lane> lanes_;
  std::vector<std::uint32_t> live_;  ///< live lane indices, compacted
  std::uint32_t live_count_ = 0;
  /// Prepare-phase unresolved lanes and the survivors of a scan round:
  /// counted arrays pre-sized to group_ (like live_/live_count_), so the
  /// scan loops write slots instead of push_back-ing.
  std::vector<std::uint32_t> scan_;
  std::uint32_t scan_count_ = 0;
  std::vector<std::uint32_t> scan_next_;
  std::uint32_t scan_next_count_ = 0;
  /// SoA probe compaction: each stage-B round pushes the live lanes'
  /// probes here and one SIMD kernel call (simd::ops()) resolves them
  /// all — comparands contiguous, so a 256-bit register carries 8 lanes.
  FlatScheme::FindBatchScratch batch_;
  std::vector<std::vector<VertexId>> lane_paths_;
};

}  // namespace croute

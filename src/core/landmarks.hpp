/// \file landmarks.hpp
/// \brief Landmark ("center") selection and level hierarchies (§3–§4).
///
/// Two samplers are provided:
///
///  - **Bernoulli** (the STOC'01 distance-oracle sampler): level A_{i+1}
///    keeps each vertex of A_i independently with probability n^{-1/k}.
///    Bunches then have *expected* size O(k·n^{1/k}), but individual
///    clusters — and hence individual routing tables — can exceed the
///    bound.
///
///  - **Centered** (the SPAA'01 routing sampler): each level is grown by
///    the iterated `center()` procedure — sample, measure every remaining
///    cluster, resample from the overweight ones — until **every** cluster
///    at the level has at most `cap = cap_factor · n^{(i+1)/k}` vertices.
///    This converts the expected bound into a worst-case per-table bound,
///    which is the paper's key refinement over Cowen's scheme and what the
///    `Õ(n^{1/k})` table guarantee rests on. Expected landmark count per
///    level is O(target · log n).
///
/// All cluster membership tests use the shared lexicographic order of
/// dijkstra.hpp, keyed by one fixed random rank permutation.
///
/// Sampling coins are **keyed, not streamed**: each candidate's
/// Bernoulli draw is a stateless mix of (one seed draw per level, round,
/// candidate id). Distributionally identical to streamed draws and just
/// as deterministic — but under topology churn a single flipped cluster
/// measurement no longer shifts every later coin, so a perturbed graph
/// resamples only the candidates whose measurements actually changed.
/// That stability is what gives delta-aware rebuilds
/// (core/incremental_rebuild.hpp) a near-identical hierarchy — and with
/// it reusable pivots and cluster trees — after a localized delta.
/// Centered resampling also re-measures only the clusters still over
/// the cap: growing A tightens guards lexicographically, so cluster
/// sizes shrink monotonically and a candidate once under the cap stays
/// under it.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace croute {

/// Which level sampler to use.
enum class SamplingMode {
  kBernoulli,  ///< i.i.d. sampling; expected-size guarantees only
  kCentered,   ///< center() resampling; worst-case cluster caps
};

/// Knobs for hierarchy construction.
struct HierarchyOptions {
  SamplingMode mode = SamplingMode::kCentered;
  /// Cluster cap = cap_factor * n^{(i+1)/k} in centered mode (paper: 4).
  double cap_factor = 4.0;
  /// Safety bound on center() resampling rounds per level.
  std::uint32_t max_rounds = 64;
};

/// The nested landmark sets A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}.
struct LandmarkHierarchy {
  std::uint32_t k = 0;
  /// levels[i] = A_i, ascending vertex ids. levels[0] is all of V and
  /// levels[k-1] is non-empty.
  std::vector<std::vector<VertexId>> levels;
  /// level_of[v] = max i with v ∈ A_i.
  std::vector<std::uint32_t> level_of;

  std::uint64_t level_size(std::uint32_t i) const {
    return levels.at(i).size();
  }
};

/// One level of center() sampling (§3): returns A ⊆ candidates such that
/// every w ∈ candidates \ A has |C(w)| ≤ cluster_cap, where
/// C(w) = {v : (d(w,v), rank(w)) <lex (d(A,v), rank(p_A(v)))}.
/// Expected |A| = O(target_size · log n). If target_size >= |candidates|
/// the whole candidate set is returned.
std::vector<VertexId> center_sample_level(const Graph& g,
                                          const std::vector<VertexId>& candidates,
                                          double target_size,
                                          double cluster_cap,
                                          const std::vector<std::uint32_t>& rank,
                                          Rng& rng,
                                          std::uint32_t max_rounds = 64);

/// Builds the k-level hierarchy over a connected graph.
/// Level sizes target n^{1-i/k}; A_{k-1} is guaranteed non-empty.
LandmarkHierarchy build_hierarchy(const Graph& g, std::uint32_t k,
                                  const std::vector<std::uint32_t>& rank,
                                  Rng& rng,
                                  const HierarchyOptions& options = {});

/// Measures |C(w)| for every w ∈ candidates against landmark set A
/// (exact, no cap). Used by tests and the T7 bench.
std::vector<std::uint32_t> exact_cluster_sizes(
    const Graph& g, const std::vector<VertexId>& candidates,
    const std::vector<VertexId>& landmark_set,
    const std::vector<std::uint32_t>& rank);

}  // namespace croute

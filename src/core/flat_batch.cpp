#include "core/flat_batch.hpp"

#include <algorithm>

namespace croute {

namespace {

/// The serving hop budget (same bound RouteService::serve uses).
CROUTE_HOT std::uint32_t default_max_hops(const Graph& g) noexcept {
  return 4 * g.num_vertices() + 16;
}

/// Appends one vertex to a lane's path buffer (diagnostic mode only).
CROUTE_HOT inline void path_append(std::vector<VertexId>* path, VertexId v) {
  if (path == nullptr) return;
  CROUTE_LINT_SUPPRESS(hot_path,
                       "opt-in path recording: the per-lane buffers keep "
                       "their high-water capacity across batches");
  path->push_back(v);
}

}  // namespace

CROUTE_HOT void FlatBatchEngine::route(const FlatBatchTarget& target,
                            std::span<const FlatBatchQuery> queries,
                            std::span<FlatBatchAnswer> answers,
                            std::vector<VertexId>* path_arena) {
  run(target, queries, answers, path_arena, /*decisions_only=*/false);
}

CROUTE_HOT void FlatBatchEngine::decide(const FlatBatchTarget& target,
                             std::span<const FlatBatchQuery> queries,
                             std::span<FlatBatchAnswer> answers) {
  run(target, queries, answers, nullptr, /*decisions_only=*/true);
}

void FlatBatchEngine::ensure_scratch(bool want_paths) {
  lanes_.resize(group_);
  live_.resize(group_);
  scan_.resize(group_);
  scan_next_.resize(group_);
  batch_.reserve(group_);
  if (want_paths) lane_paths_.resize(group_);
}

CROUTE_HOT void FlatBatchEngine::finish(Lane& lane, FlatBatchAnswer& answer,
                             RouteStatus status,
                             std::vector<VertexId>* path_arena) const {
  answer.status = status;
  answer.length = lane.length;
  answer.hops = lane.hops;
  answer.header_bits = lane.bits;
  if (lane.path != nullptr && path_arena != nullptr) {
    answer.path_off = static_cast<std::uint32_t>(path_arena->size());
    answer.path_len = static_cast<std::uint32_t>(lane.path->size());
    CROUTE_LINT_SUPPRESS(hot_path,
                         "opt-in path recording flushes into the "
                         "caller-owned arena, which keeps its high-water "
                         "capacity across batches");
    path_arena->insert(path_arena->end(), lane.path->begin(),
                       lane.path->end());
  }
}

CROUTE_HOT void FlatBatchEngine::run(const FlatBatchTarget& target,
                          std::span<const FlatBatchQuery> queries,
                          std::span<FlatBatchAnswer> answers,
                          std::vector<VertexId>* path_arena,
                          bool decisions_only) {
  CROUTE_REQUIRE(queries.size() == answers.size(),
                 "answers must be pre-sized to the query count");
  CROUTE_REQUIRE(target.graph != nullptr, "batch target needs a graph");
  switch (target.kind) {
    case FlatServeKind::kTZDirect:
    case FlatServeKind::kTZHandshake:
      CROUTE_REQUIRE(target.flat != nullptr,
                     "TZ batch target needs the flat view");
      break;
    case FlatServeKind::kCowen:
      CROUTE_REQUIRE(target.cowen != nullptr,
                     "Cowen batch target needs the pooled view");
      break;
    case FlatServeKind::kFullTable:
      CROUTE_REQUIRE(target.full != nullptr,
                     "full-table batch target needs the pooled view");
      break;
  }
  if (target.kind == FlatServeKind::kTZDirect &&
      target.policy == RoutingPolicy::kMinEstimate) {
    CROUTE_REQUIRE(target.flat->base().options().labels_carry_distances,
                   "kMinEstimate needs labels built with "
                   "labels_carry_distances");
  }
  if (queries.empty()) return;

  const std::uint32_t max_hops = target.max_hops != 0
                                     ? target.max_hops
                                     : default_max_hops(*target.graph);
  const Graph& g = *target.graph;
  CROUTE_LINT_SUPPRESS(hot_path,
                       "scratch warmup: every resize is a no-op once the "
                       "engine has served its first batch");
  ensure_scratch(path_arena != nullptr);
  using clock = std::chrono::steady_clock;

  for (std::size_t base = 0; base < queries.size(); base += group_) {
    const auto m = static_cast<std::uint32_t>(
        std::min<std::size_t>(group_, queries.size() - base));
    const auto gen_begin = clock::now();
    live_count_ = 0;
    for (std::uint32_t j = 0; j < m; ++j) {
      Lane& lane = lanes_[j];
      const FlatBatchQuery& q = queries[base + j];
      lane.qi = static_cast<std::uint32_t>(base + j);
      lane.s = q.s;
      lane.t = q.t;
      lane.here = q.s;
      lane.root = kNoVertex;
      lane.bits = 0;
      lane.length = 0;
      lane.hops = 0;
      lane.path = path_arena != nullptr ? &lane_paths_[j] : nullptr;
      if (lane.path != nullptr) {
        lane.path->clear();
        path_append(lane.path, q.s);
      }
      if (q.s == q.t) {
        // Self-query: the packet never leaves the source — delivered, 0
        // hops, 0 header bits (same defined answer as the scalar path).
        FlatBatchAnswer& a = answers[lane.qi];
        a.tree_root = kNoVertex;
        a.first_deliver = true;
        a.first_port = kNoPort;
        finish(lane, a, RouteStatus::kDelivered, path_arena);
        continue;
      }
      switch (target.kind) {
        case FlatServeKind::kTZDirect:
          CROUTE_REQUIRE(!q.label.empty(), "malformed destination label");
          lane.lab_it = q.label.data();
          lane.lab_end = q.label.data() + q.label.size();
          lane.lab_best = nullptr;
          lane.lab_pool = q.light_pool != nullptr
                              ? q.light_pool
                              : target.flat->label_light_pool();
          lane.best_est = kInfiniteWeight;
          CROUTE_PREFETCH(lane.lab_it);
          if (target.policy != RoutingPolicy::kLabelOnly) {
            lane.probe = FlatScheme::FindProbe{q.s, q.t};
            target.flat->dir_find_stage0(lane.probe);
          }
          break;
        case FlatServeKind::kTZHandshake:
          lane.hs_u = q.s;
          lane.hs_v = q.t;
          lane.hs_w = q.s;  // ŵ_0(u) = u
          lane.hs_i = 0;
          lane.hs_done = false;
          lane.probe = FlatScheme::FindProbe{lane.hs_v, lane.hs_w};
          target.flat->find_stage0(lane.probe);
          break;
        case FlatServeKind::kCowen:
          lane.bits = target.cowen->label_bits();
          target.cowen->prefetch_label(q.t);
          break;
        case FlatServeKind::kFullTable:
          lane.bits = target.full->label_bits();
          target.full->prefetch_hop(q.s, q.t);
          g.prefetch_offsets(q.s);
          break;
      }
      live_[live_count_++] = j;
    }

    switch (target.kind) {
      case FlatServeKind::kTZDirect:
        prepare_tz_direct(target, answers);
        walk_tz(target, answers, path_arena, decisions_only, max_hops);
        break;
      case FlatServeKind::kTZHandshake:
        prepare_tz_handshake(target);
        walk_tz(target, answers, path_arena, decisions_only, max_hops);
        break;
      case FlatServeKind::kCowen:
        walk_cowen(target, answers, path_arena, decisions_only, max_hops);
        break;
      case FlatServeKind::kFullTable:
        walk_full(target, answers, path_arena, decisions_only, max_hops);
        break;
    }

    // Each query's latency is its amortized share of the generation's
    // wall time (the lanes ran interleaved; per-lane wall time would
    // charge every query for the whole group).
    const double share_us =
        std::chrono::duration<double>(clock::now() - gen_begin).count() *
        1e6 / m;
    for (std::uint32_t j = 0; j < m; ++j) {
      answers[base + j].latency_us = share_us;
    }

    // Sampled occupancy accounting, from the drained generation's
    // finished answers — the stage loops above never see it.
    if (stats_sample_every_ != 0 && ++gen_seq_ % stats_sample_every_ == 0) {
      std::uint32_t longest = 0;
      std::uint64_t useful = 0;
      for (std::uint32_t j = 0; j < m; ++j) {
        const std::uint32_t h = answers[base + j].hops;
        useful += h;
        if (h > longest) longest = h;
      }
      ++stats_.generations;
      stats_.lanes += m;
      stats_.lane_hops += useful;
      stats_.slots += static_cast<std::uint64_t>(longest) * m;
    }
  }
}

CROUTE_HOT void FlatBatchEngine::prepare_tz_direct(
    const FlatBatchTarget& target, std::span<FlatBatchAnswer> answers) {
  (void)answers;
  const FlatScheme* f = target.flat;
  // Rule 0, lockstep: every lane probes its source's cluster directory
  // (stage0 prefetches were issued at lane init); the compacted probes
  // resolve in one SIMD kernel call.
  if (target.policy != RoutingPolicy::kLabelOnly) {
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      f->dir_find_stage1(lanes_[live_[pos]].probe);
    }
    batch_.clear();
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      batch_.push(lanes_[live_[pos]].probe);
    }
    f->dir_find_stage2_batch(batch_);
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      Lane& lane = lanes_[live_[pos]];
      lane.pool_idx = batch_.out[pos];
      if (lane.pool_idx != FlatScheme::kNotFound) {
        f->prefetch_dir_payload(lane.pool_idx);
      }
    }
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      Lane& lane = lanes_[live_[pos]];
      if (lane.pool_idx == FlatScheme::kNotFound) continue;
      const std::span<const Port> ports = f->dir_light_ports(lane.pool_idx);
      lane.root = lane.s;
      lane.dfs_in = f->dir_dfs(lane.pool_idx);
      lane.light = ports.data();
      lane.light_len = static_cast<std::uint32_t>(ports.size());
      lane.bits = f->header_bits_for(lane.light_len);
    }
  }
  // Label pivot scan for the rule-0 misses, lockstep over entries: each
  // round probes every unresolved lane's current entry (three loops =
  // the three find stages, so lane A's slice prefetch flies while lanes
  // B…G descend).
  scan_count_ = 0;
  for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
    Lane& lane = lanes_[live_[pos]];
    if (lane.root != kNoVertex) continue;  // rule-0 hit
    lane.probe = FlatScheme::FindProbe{lane.s, lane.lab_it->w};
    f->find_stage0(lane.probe);
    scan_[scan_count_++] = live_[pos];
  }
  while (scan_count_ > 0) {
    for (std::uint32_t i = 0; i < scan_count_; ++i) {
      f->find_stage1(lanes_[scan_[i]].probe);
    }
    batch_.clear();
    for (std::uint32_t i = 0; i < scan_count_; ++i) {
      batch_.push(lanes_[scan_[i]].probe);
    }
    f->find_stage2_batch(batch_);
    scan_next_count_ = 0;
    for (std::uint32_t i = 0; i < scan_count_; ++i) {
      Lane& lane = lanes_[scan_[i]];
      const std::uint32_t idx = batch_.out[i];
      const FlatScheme::LabelEntryView* chosen = nullptr;
      if (target.policy != RoutingPolicy::kMinEstimate) {
        if (idx != FlatScheme::kNotFound) {
          chosen = lane.lab_it;
        } else {
          ++lane.lab_it;
          CROUTE_ASSERT(lane.lab_it != lane.lab_end,
                        "no candidate pivot found: top-level landmark "
                        "missing from the source bunch");
        }
      } else {
        if (idx != FlatScheme::kNotFound) {
          const Weight estimate = f->dist(idx) + lane.lab_it->dist;
          if (estimate < lane.best_est) {
            lane.best_est = estimate;
            lane.lab_best = lane.lab_it;
          }
        }
        ++lane.lab_it;
        if (lane.lab_it == lane.lab_end) {
          CROUTE_ASSERT(lane.lab_best != nullptr,
                        "no candidate pivot found: top-level landmark "
                        "missing from the source bunch");
          chosen = lane.lab_best;
        }
      }
      if (chosen == nullptr) {  // scan continues with the next entry
        lane.probe = FlatScheme::FindProbe{lane.s, lane.lab_it->w};
        f->find_stage0(lane.probe);
        scan_next_[scan_next_count_++] = scan_[i];
        continue;
      }
      lane.root = chosen->w;
      lane.dfs_in = chosen->dfs_in;
      lane.light = lane.lab_pool + chosen->light_off;
      lane.light_len = chosen->light_len;
      lane.bits = f->header_bits_for(chosen->light_len);
    }
    scan_.swap(scan_next_);
    scan_count_ = scan_next_count_;
  }
  // Enter the walk: every lane decides first at its source.
  for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
    Lane& lane = lanes_[live_[pos]];
    lane.probe = FlatScheme::FindProbe{lane.here, lane.root};
    f->find_stage0(lane.probe);
    target.graph->prefetch_offsets(lane.here);
  }
}

CROUTE_HOT void FlatBatchEngine::prepare_tz_handshake(
    const FlatBatchTarget& target) {
  const FlatScheme* f = target.flat;
  // Bidirectional pivot walks, lockstep: each round runs one membership
  // probe per unresolved lane (as TZRouter::prepare_handshake, with flat
  // probes). A lane whose walk meets switches to the final find(t, w) —
  // unless the meeting probe already was one — and resolves to its
  // destination-side own label.
  for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
    scan_[pos] = live_[pos];
  }
  scan_count_ = live_count_;
  while (scan_count_ > 0) {
    for (std::uint32_t i = 0; i < scan_count_; ++i) {
      f->find_stage1(lanes_[scan_[i]].probe);
    }
    batch_.clear();
    for (std::uint32_t i = 0; i < scan_count_; ++i) {
      batch_.push(lanes_[scan_[i]].probe);
    }
    f->find_stage2_batch(batch_);
    scan_next_count_ = 0;
    for (std::uint32_t i = 0; i < scan_count_; ++i) {
      Lane& lane = lanes_[scan_[i]];
      const std::uint32_t idx = batch_.out[i];
      if (idx != FlatScheme::kNotFound) {
        if (lane.hs_done || lane.hs_v == lane.t) {
          lane.pool_idx = idx;
          f->prefetch_own_label(idx);
          continue;
        }
        lane.hs_done = true;  // meeting found; resolve t's own label next
        lane.probe = FlatScheme::FindProbe{lane.t, lane.hs_w};
        f->find_stage0(lane.probe);
        scan_next_[scan_next_count_++] = scan_[i];
        continue;
      }
      CROUTE_ASSERT(!lane.hs_done,
                    "handshake meeting tree misses the destination");
      ++lane.hs_i;
      CROUTE_ASSERT(lane.hs_i < f->k(),
                    "handshake walk exceeded the hierarchy height");
      std::swap(lane.hs_u, lane.hs_v);
      lane.hs_w =
          f->base().preprocessing().effective_pivot(lane.hs_i, lane.hs_u);
      lane.probe = FlatScheme::FindProbe{lane.hs_v, lane.hs_w};
      f->find_stage0(lane.probe);
      scan_next_[scan_next_count_++] = scan_[i];
    }
    scan_.swap(scan_next_);
    scan_count_ = scan_next_count_;
  }
  for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
    Lane& lane = lanes_[live_[pos]];
    const std::span<const Port> ports = f->own_light_ports(lane.pool_idx);
    lane.root = lane.hs_w;
    lane.dfs_in = f->own_dfs(lane.pool_idx);
    lane.light = ports.data();
    lane.light_len = static_cast<std::uint32_t>(ports.size());
    lane.bits = f->header_bits_for(lane.light_len);
    lane.probe = FlatScheme::FindProbe{lane.here, lane.root};
    f->find_stage0(lane.probe);
    target.graph->prefetch_offsets(lane.here);
  }
}

CROUTE_HOT void FlatBatchEngine::walk_tz(const FlatBatchTarget& target,
                                         std::span<FlatBatchAnswer> answers,
                                         std::vector<VertexId>* path_arena,
                                         bool decisions_only,
                                         std::uint32_t max_hops) {
  const FlatScheme* f = target.flat;
  const Graph& g = *target.graph;
  while (live_count_ > 0) {
    // A: per-vertex index metadata → key memory prefetch.
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      f->find_stage1(lanes_[live_[pos]].probe);
    }
    // B: resolve every lane's probe in one SIMD kernel call, prefetch
    // the node records.
    batch_.clear();
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      batch_.push(lanes_[live_[pos]].probe);
    }
    f->find_stage2_batch(batch_);
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      Lane& lane = lanes_[live_[pos]];
      const std::uint32_t idx = batch_.out[pos];
      CROUTE_ASSERT(idx != FlatScheme::kNotFound,
                    "packet left the routing tree: vertex has no entry "
                    "for it");
      lane.pool_idx = idx;
      f->prefetch_record(idx);
    }
    // C: the O(1) tree decision (same comparisons as FlatRouter::step, in
    // the same order); completed lanes retire, survivors prefetch their
    // arc.
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      const TreeNodeRecord& here = f->record(lane.pool_idx);
      if (lane.dfs_in == here.dfs_in) {
        lane.deliver = true;
        lane.port = kNoPort;
      } else {
        lane.deliver = false;
        if (lane.dfs_in < here.dfs_in || lane.dfs_in >= here.dfs_out) {
          CROUTE_ASSERT(here.parent_port != kNoPort,
                        "destination outside the tree reached the root");
          lane.port = here.parent_port;
        } else if (lane.dfs_in >= here.heavy_in &&
                   lane.dfs_in < here.heavy_out &&
                   here.heavy_port != kNoPort) {
          lane.port = here.heavy_port;
        } else {
          CROUTE_ASSERT(here.light_depth < lane.light_len,
                        "label misses the light port for this branch "
                        "point");
          lane.port = lane.light[here.light_depth];
        }
      }
      FlatBatchAnswer& a = answers[lane.qi];
      if (decisions_only) {
        a.tree_root = lane.root;
        a.first_deliver = lane.deliver;
        a.first_port = lane.port;
        finish(lane, a,
               lane.deliver ? (lane.here == lane.t
                                   ? RouteStatus::kDelivered
                                   : RouteStatus::kWrongDeliver)
                            : RouteStatus::kHopLimit,
               path_arena);
        retire(pos);
        continue;
      }
      if (lane.deliver) {
        finish(lane, a,
               lane.here == lane.t ? RouteStatus::kDelivered
                                   : RouteStatus::kWrongDeliver,
               path_arena);
        retire(pos);
        continue;
      }
      if (lane.port >= g.degree(lane.here)) {
        finish(lane, a, RouteStatus::kBadPort, path_arena);
        retire(pos);
        continue;
      }
      g.prefetch_arc(lane.here, lane.port);
      ++pos;
    }
    // D: traverse the arc, prefetch the next vertex's index metadata.
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      const Arc& arc = g.arc(lane.here, lane.port);
      lane.length += arc.weight;
      ++lane.hops;
      lane.here = arc.head;
      path_append(lane.path, lane.here);
      if (lane.hops >= max_hops) {
        finish(lane, answers[lane.qi], RouteStatus::kHopLimit, path_arena);
        retire(pos);
        continue;
      }
      lane.probe = FlatScheme::FindProbe{lane.here, lane.root};
      f->find_stage0(lane.probe);
      g.prefetch_offsets(lane.here);
      ++pos;
    }
  }
}

CROUTE_HOT void FlatBatchEngine::walk_cowen(
    const FlatBatchTarget& target, std::span<FlatBatchAnswer> answers,
    std::vector<VertexId>* path_arena, bool decisions_only,
    std::uint32_t max_hops) {
  const FlatCowen* c = target.cowen;
  const Graph& g = *target.graph;
  // Resolve labels (prefetched at init) and issue the first prefetches.
  for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
    Lane& lane = lanes_[live_[pos]];
    lane.cl = c->label(lane.t);
    c->prefetch_meta(lane.here, lane.cl);
    g.prefetch_offsets(lane.here);
  }
  while (live_count_ > 0) {
    // A: deliver check + cluster slice metadata → key prefetch.
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      if (lane.here == lane.t) {
        FlatBatchAnswer& a = answers[lane.qi];
        if (decisions_only) {
          a.tree_root = kNoVertex;
          a.first_deliver = true;
          a.first_port = kNoPort;
        }
        finish(lane, a, RouteStatus::kDelivered, path_arena);
        retire(pos);
        continue;
      }
      c->load_slice(lane.here, lane.probe.off, lane.probe.len);
      ++pos;
    }
    // B: cluster probe — all lanes in one SIMD kernel call; hits
    // prefetch their exact first-hop port.
    batch_.clear();
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      Lane& lane = lanes_[live_[pos]];
      batch_.push_slice(lane.probe.off, lane.probe.len, lane.t);
    }
    c->find_at_batch(batch_);
    for (std::uint32_t pos = 0; pos < live_count_; ++pos) {
      Lane& lane = lanes_[live_[pos]];
      lane.pool_idx = batch_.out[pos];
      if (lane.pool_idx != FlatCowen::kNotFound) {
        c->prefetch_cluster_port(lane.pool_idx);
      }
    }
    // C: the per-hop decision (same order as FlatCowen::step): exact
    // cluster hop, else the label's home port, else toward the home
    // landmark (that port row entry was prefetched with the metadata).
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      if (lane.pool_idx != FlatCowen::kNotFound) {
        lane.port = c->cluster_port(lane.pool_idx);
      } else if (lane.here == lane.cl.home) {
        CROUTE_ASSERT(lane.cl.port_at_home != kNoPort,
                      "label for a non-landmark destination lacks a home "
                      "port");
        lane.port = lane.cl.port_at_home;
      } else {
        CROUTE_ASSERT(lane.cl.home_col != FlatCowen::kNoColumn,
                      "destination's home is not a landmark");
        lane.port = c->landmark_port(lane.here, lane.cl.home_col);
        CROUTE_ASSERT(lane.port != kNoPort,
                      "missing landmark port on a connected graph");
      }
      FlatBatchAnswer& a = answers[lane.qi];
      if (decisions_only) {
        a.tree_root = kNoVertex;
        a.first_deliver = false;
        a.first_port = lane.port;
        finish(lane, a, RouteStatus::kHopLimit, path_arena);
        retire(pos);
        continue;
      }
      if (lane.port >= g.degree(lane.here)) {
        finish(lane, a, RouteStatus::kBadPort, path_arena);
        retire(pos);
        continue;
      }
      g.prefetch_arc(lane.here, lane.port);
      ++pos;
    }
    // D: traverse, prefetch the next hop's metadata.
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      const Arc& arc = g.arc(lane.here, lane.port);
      lane.length += arc.weight;
      ++lane.hops;
      lane.here = arc.head;
      path_append(lane.path, lane.here);
      if (lane.hops >= max_hops) {
        finish(lane, answers[lane.qi], RouteStatus::kHopLimit, path_arena);
        retire(pos);
        continue;
      }
      c->prefetch_meta(lane.here, lane.cl);
      g.prefetch_offsets(lane.here);
      ++pos;
    }
  }
}

CROUTE_HOT void FlatBatchEngine::walk_full(
    const FlatBatchTarget& target, std::span<FlatBatchAnswer> answers,
    std::vector<VertexId>* path_arena, bool decisions_only,
    std::uint32_t max_hops) {
  const FlatFullTable* ft = target.full;
  const Graph& g = *target.graph;
  while (live_count_ > 0) {
    // A: deliver check + exact next hop (prefetched on arrival).
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      FlatBatchAnswer& a = answers[lane.qi];
      if (lane.here == lane.t) {
        if (decisions_only) {
          a.tree_root = kNoVertex;
          a.first_deliver = true;
          a.first_port = kNoPort;
        }
        finish(lane, a, RouteStatus::kDelivered, path_arena);
        retire(pos);
        continue;
      }
      lane.port = ft->next_hop(lane.here, lane.t);
      if (decisions_only) {
        a.tree_root = kNoVertex;
        a.first_deliver = false;
        a.first_port = lane.port;
        finish(lane, a, RouteStatus::kHopLimit, path_arena);
        retire(pos);
        continue;
      }
      if (lane.port >= g.degree(lane.here)) {
        finish(lane, a, RouteStatus::kBadPort, path_arena);
        retire(pos);
        continue;
      }
      g.prefetch_arc(lane.here, lane.port);
      ++pos;
    }
    // B: traverse, prefetch the next row entry.
    for (std::uint32_t pos = 0; pos < live_count_;) {
      Lane& lane = lanes_[live_[pos]];
      const Arc& arc = g.arc(lane.here, lane.port);
      lane.length += arc.weight;
      ++lane.hops;
      lane.here = arc.head;
      path_append(lane.path, lane.here);
      if (lane.hops >= max_hops) {
        finish(lane, answers[lane.qi], RouteStatus::kHopLimit, path_arena);
        retire(pos);
        continue;
      }
      ft->prefetch_hop(lane.here, lane.t);
      g.prefetch_offsets(lane.here);
      ++pos;
    }
  }
}

}  // namespace croute

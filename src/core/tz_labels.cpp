#include "core/tz_labels.hpp"

#include <bit>

namespace croute {

const LabelEntry& RoutingLabel::entry_for_level(std::uint32_t level) const {
  CROUTE_REQUIRE(!entries.empty(), "empty routing label");
  // Entries ascend by level; find the last with entry.level <= level.
  const LabelEntry* best = &entries.front();
  for (const LabelEntry& e : entries) {
    if (e.level <= level) {
      best = &e;
    } else {
      break;
    }
  }
  return *best;
}

LabelCodec::LabelCodec(VertexId n, Port max_degree, bool carry_distances)
    : id_bits_(bits_for_universe(n)),
      tree_codec_(n, max_degree),
      carry_distances_(carry_distances) {}

void LabelCodec::encode(const RoutingLabel& l, BitWriter& w) const {
  CROUTE_REQUIRE(!l.entries.empty(), "cannot encode an empty label");
  w.write_bits(l.t, id_bits_);
  w.write_gamma(l.entries.size());
  for (const LabelEntry& e : l.entries) {
    w.write_gamma(std::uint64_t{e.level} + 1);
    w.write_bits(e.w, id_bits_);
    if (carry_distances_) {
      w.write_bits(std::bit_cast<std::uint64_t>(e.dist), 64);
    }
    TreeRoutingScheme::encode_label(e.tree, tree_codec_, w);
  }
}

RoutingLabel LabelCodec::decode(BitReader& r) const {
  RoutingLabel l;
  l.t = static_cast<VertexId>(r.read_bits(id_bits_));
  const std::uint64_t count = r.read_gamma();
  l.entries.resize(count);
  for (LabelEntry& e : l.entries) {
    e.level = static_cast<std::uint32_t>(r.read_gamma() - 1);
    e.w = static_cast<VertexId>(r.read_bits(id_bits_));
    e.dist = carry_distances_ ? std::bit_cast<Weight>(r.read_bits(64)) : 0;
    e.tree = TreeRoutingScheme::decode_label(tree_codec_, r);
  }
  return l;
}

std::uint64_t LabelCodec::label_bits(const RoutingLabel& l) const {
  BitWriter w;
  encode(l, w);
  return w.bit_size();
}

}  // namespace croute

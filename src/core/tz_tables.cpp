#include "core/tz_tables.hpp"

#include <algorithm>

namespace croute {

VertexTable::VertexTable(std::vector<TableEntry> entries,
                         std::vector<Port> light_pool,
                         const TreeRoutingScheme::Codec& codec,
                         std::uint32_t vertex_id_bits)
    : entries_(std::move(entries)), light_pool_(std::move(light_pool)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const TableEntry& a, const TableEntry& b) { return a.w < b.w; });
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    CROUTE_REQUIRE(entries_[i - 1].w != entries_[i].w,
                   "duplicate tree root in a vertex table");
  }
  // Exact serialized size: key + level + record + own tree label.
  // Accounted arithmetically (record_bits/label_bits mirror the
  // encoders bit-for-bit) — finalization is on the rebuild path and
  // actually writing the bits was a measurable slice of it.
  for (const TableEntry& e : entries_) {
    bit_size_ += vertex_id_bits + gamma_bits(std::uint64_t{e.level} + 1) +
                 TreeRoutingScheme::record_bits(e.record, codec) +
                 TreeRoutingScheme::label_bits(e.light_len, codec);
  }
}

const TableEntry* VertexTable::find(VertexId w) const noexcept {
  if (hash_) {
    const auto idx = hash_->find(w);
    if (!idx) return nullptr;
    return &entries_[*idx];
  }
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), w,
      [](const TableEntry& e, VertexId key) { return e.w < key; });
  if (it == entries_.end() || it->w != w) return nullptr;
  return &*it;
}

TreeLabel VertexTable::own_label(const TableEntry& e) const {
  CROUTE_DCHECK(std::uint64_t{e.light_off} + e.light_len <= light_pool_.size(),
                "light pool slice out of range");
  TreeLabel l;
  l.dfs_in = e.record.dfs_in;
  l.light_ports.assign(light_pool_.begin() + e.light_off,
                       light_pool_.begin() + e.light_off + e.light_len);
  return l;
}

ClusterDirectory::ClusterDirectory(const LocalTree& tree,
                                   const TreeRoutingScheme& trs,
                                   const TreeRoutingScheme::Codec& codec,
                                   std::uint32_t vertex_id_bits) {
  const std::uint32_t n = tree.size();
  // Sort member indices by global vertex id for binary-searchable keys.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return tree.global[a] < tree.global[b];
            });
  ts_.resize(n);
  dfs_.resize(n);
  light_off_.resize(std::size_t{n} + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t local = order[i];
    const TreeLabel& l = trs.label(local);
    ts_[i] = tree.global[local];
    dfs_[i] = l.dfs_in;
    light_off_[i] = static_cast<std::uint32_t>(pool_.size());
    pool_.insert(pool_.end(), l.light_ports.begin(), l.light_ports.end());
    bit_size_ += vertex_id_bits +
                 TreeRoutingScheme::label_bits(l.light_ports.size(), codec);
  }
  light_off_[n] = static_cast<std::uint32_t>(pool_.size());
}

std::uint32_t ClusterDirectory::find_index(VertexId t) const noexcept {
  const auto it = std::lower_bound(ts_.begin(), ts_.end(), t);
  if (it == ts_.end() || *it != t) return kNoIndex;
  return static_cast<std::uint32_t>(it - ts_.begin());
}

TreeLabel ClusterDirectory::label_at(std::uint32_t index) const {
  CROUTE_DCHECK(index < ts_.size(), "directory index out of range");
  TreeLabel l;
  l.dfs_in = dfs_[index];
  l.light_ports.assign(pool_.begin() + light_off_[index],
                       pool_.begin() + light_off_[index + 1]);
  return l;
}

std::optional<TreeLabel> ClusterDirectory::find(VertexId t) const {
  const std::uint32_t i = find_index(t);
  if (i == kNoIndex) return std::nullopt;
  return label_at(i);
}

void VertexTable::build_hash_index(Rng& rng) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kv;
  kv.reserve(entries_.size());
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    kv.emplace_back(entries_[i].w, i);
  }
  hash_ = PerfectHashMap::build(kv, rng);
}

}  // namespace croute

/// \file tz_scheme.hpp
/// \brief The Thorup–Zwick compact routing scheme for general graphs (§4).
///
/// Construction pipeline (one pass, bottom-up):
///   1. sample the hierarchy A_0 ⊇ … ⊇ A_{k-1} (landmarks.hpp);
///   2. compute pivots per level (clusters.hpp);
///   3. for every vertex w, grow its cluster C(w) by restricted Dijkstra,
///      build the tree-routing structures of the shortest-path tree T_w,
///      and scatter node records into the routing tables of C(w)'s
///      members; destinations whose labels reference T_w get their tree
///      label extracted from the same pass;
///   4. finalize per-vertex tables (sort, bit-account, optional FKS index)
///      and per-destination labels.
///
/// Guarantees (validated by tests/benches):
///   - routing s→t delivers over a path of weighted length at most
///     (4k−5)·d(s,t) without handshake and (2k−1)·d(s,t) with handshake
///     (tz_router.hpp);
///   - with centered sampling every table has O(n^{1/k}·log n) entries
///     worst case; with Bernoulli sampling the bound holds in expectation;
///   - label sizes are O(k·log n) bits.

#pragma once

#include <cstdint>
#include <vector>

#include "core/clusters.hpp"
#include "core/tz_labels.hpp"
#include "core/tz_tables.hpp"
#include "util/annotations.hpp"

namespace croute {

/// Construction options for TZScheme.
struct TZSchemeOptions {
  PreprocessOptions pre;  ///< k and hierarchy sampling
  /// Build an FKS perfect-hash index over every vertex table (O(1)
  /// worst-case lookups; adds space accounted separately).
  bool hash_index = false;
  /// Carry d(w,t) in address labels (enables the kMinEstimate routing
  /// policy; adds 64 bits per label entry to the accounting).
  bool labels_carry_distances = false;
};

/// An immutable compact routing scheme over one connected graph.
class TZScheme {
 public:
  /// Preprocesses \p g. The graph must stay alive as long as the scheme.
  /// Deterministic in (graph, options, rng state): same bytes every run.
  CROUTE_DETERMINISTIC TZScheme(const Graph& g,
                                const TZSchemeOptions& options, Rng& rng);

  const Graph& graph() const noexcept { return *g_; }
  CROUTE_HOT std::uint32_t k() const noexcept { return pre_.k(); }
  CROUTE_HOT const TZPreprocessing& preprocessing() const noexcept {
    return pre_;
  }
  CROUTE_HOT const TZSchemeOptions& options() const noexcept {
    return options_;
  }

  /// Routing table of vertex v.
  const VertexTable& table(VertexId v) const { return tables_[v]; }

  /// Table entry of v for tree root w, or nullptr (bunch membership test).
  const TableEntry* lookup(VertexId v, VertexId w) const {
    return tables_[v].find(w);
  }

  /// Address label of destination t.
  const RoutingLabel& label(VertexId t) const { return labels_[t]; }

  /// Cluster directory of vertex w: tree labels of every t ∈ C(w) in T_w.
  /// The source consults its own directory first (rule "t ∈ C(s)").
  const ClusterDirectory& directory(VertexId w) const { return dirs_[w]; }

  const LabelCodec& label_codec() const noexcept { return codec_; }
  const TreeRoutingScheme::Codec& tree_codec() const noexcept {
    return tree_codec_;
  }

  /// --- space accounting ---------------------------------------------------
  /// A vertex's full routing state: bunch entries + cluster directory
  /// (+ hash overhead when enabled).
  std::uint64_t table_bits(VertexId v) const {
    return tables_[v].bit_size() + tables_[v].hash_bits() +
           dirs_[v].bit_size();
  }
  std::uint64_t label_bits(VertexId t) const {
    return codec_.label_bits(labels_[t]);
  }
  std::uint64_t total_table_bits() const;
  std::uint64_t max_table_bits() const;

  /// Number of table entries per vertex (|B(v)|), for distribution stats.
  std::vector<std::uint32_t> bunch_sizes() const;

 private:
  friend class SchemeSerializer;
  friend class IncrementalRebuilder;  // delta-aware rebuilds fill members
  TZScheme() = default;

  const Graph* g_ = nullptr;
  TZSchemeOptions options_;
  TZPreprocessing pre_;
  TreeRoutingScheme::Codec tree_codec_;
  LabelCodec codec_;
  std::vector<VertexTable> tables_;
  std::vector<ClusterDirectory> dirs_;
  std::vector<RoutingLabel> labels_;
};

}  // namespace croute

/// \file stretch3.hpp
/// \brief The k = 2 stretch-3 scheme (§3) — the paper's headline result.
///
/// Specializes the general hierarchy to two levels with `center()`-based
/// landmark selection: A_1 = center(G, √n), so that
///   - |A_1| = O(√n · log n) in expectation,
///   - every cluster |C(w)| ≤ 4·√n worst case,
/// giving routing tables of Õ(√n) bits at *every* vertex and stretch
/// exactly ≤ 3:
///   - if t ∈ C(s), s's cluster directory yields t's label in T_s and the
///     packet descends an exact shortest path (stretch 1); likewise if
///     s ∈ C(t) the packet ascends T_t exactly;
///   - otherwise t ∉ C(s) certifies d(t, a_t) ≤ d(s, t) for t's home
///     landmark a_t = ŵ_1(t), and the T_{a_t} route costs
///     ≤ d(s,a_t) + d(a_t,t) ≤ 3·d(s,t).
///
/// This improves Cowen's stretch-3 scheme (tables Õ(n^{2/3}),
/// baseline/cowen.hpp) and is stretch-optimal among schemes with o(n)-bit
/// tables (Gavoille–Gengler). Benches T1/F2 reproduce the comparison.

#pragma once

#include "core/tz_router.hpp"
#include "core/tz_scheme.hpp"

namespace croute {

/// Two-level Thorup–Zwick scheme with worst-case table bounds.
class Stretch3Scheme {
 public:
  struct Options {
    double cap_factor = 4.0;   ///< cluster cap = cap_factor · √n
    bool hash_index = false;   ///< FKS index over tables
  };

  Stretch3Scheme(const Graph& g, Rng& rng, const Options& options);
  Stretch3Scheme(const Graph& g, Rng& rng)
      : Stretch3Scheme(g, rng, Options{}) {}

  const TZScheme& scheme() const noexcept { return scheme_; }
  const TZRouter& router() const noexcept { return router_; }

  /// The landmark set A_1.
  const std::vector<VertexId>& landmarks() const {
    return scheme_.preprocessing().hierarchy().levels[1];
  }

  /// t's home landmark a_t (its effective level-1 pivot).
  VertexId home_landmark(VertexId t) const {
    return scheme_.preprocessing().effective_pivot(1, t);
  }

  /// True if s routes to t on an exact shortest path: either t ∈ C(s)
  /// (descent of T_s) or s ∈ C(t) with t its own level-0 pivot (ascent of
  /// T_t straight to the root).
  bool routes_directly(VertexId s, VertexId t) const {
    if (scheme_.directory(s).contains(t)) return true;
    const RoutingLabel& l = scheme_.label(t);
    return l.entries.front().w == t &&
           scheme_.lookup(s, l.entries.front().w) != nullptr;
  }

  /// Source decision (stretch ≤ 3).
  TZHeader prepare(VertexId s, VertexId t) const {
    return router_.prepare(s, scheme_.label(t), RoutingPolicy::kMinLevel);
  }

  /// Per-hop decision.
  TreeDecision step(VertexId v, const TZHeader& h) const {
    return router_.step(v, h);
  }

 private:
  static TZSchemeOptions make_options(const Options& o);

  TZScheme scheme_;
  TZRouter router_;
};

}  // namespace croute

#include "core/tz_router.hpp"

namespace croute {

TZHeader TZRouter::prepare(VertexId s, const RoutingLabel& dest,
                           RoutingPolicy policy) const {
  CROUTE_REQUIRE(!dest.entries.empty(), "malformed destination label");
  // Rule 0 (the paper's first case): t ∈ C(s) — s's own cluster directory
  // has t's tree label in T_s, and the packet descends T_s on an exact
  // shortest path. Skipping this rule still routes correctly but only
  // guarantees stretch 4k−3; with it the failure of rule 0 certifies
  // d(t, A_1) ≤ d(s, t), which is what the 4k−5 induction starts from.
  if (policy != RoutingPolicy::kLabelOnly) {
    const ClusterDirectory& dir = scheme_->directory(s);
    const std::uint32_t i = dir.find_index(dest.t);
    if (i != ClusterDirectory::kNoIndex) {
      return TZHeader{dest.t, s, dir.label_at(i)};
    }
  }
  const LabelEntry* chosen = nullptr;
  if (policy != RoutingPolicy::kMinEstimate) {
    for (const LabelEntry& e : dest.entries) {
      if (scheme_->lookup(s, e.w) != nullptr) {
        chosen = &e;
        break;
      }
    }
  } else {
    CROUTE_REQUIRE(scheme_->options().labels_carry_distances,
                   "kMinEstimate needs labels built with "
                   "labels_carry_distances");
    Weight best = kInfiniteWeight;
    for (const LabelEntry& e : dest.entries) {
      const TableEntry* te = scheme_->lookup(s, e.w);
      if (te == nullptr) continue;
      const Weight estimate = te->dist + e.dist;
      if (estimate < best) {
        best = estimate;
        chosen = &e;
      }
    }
  }
  CROUTE_ASSERT(chosen != nullptr,
                "no candidate pivot found: top-level landmark missing from "
                "the source bunch");
  return TZHeader{dest.t, chosen->w, chosen->tree};
}

TZHeader TZRouter::prepare_handshake(VertexId s, VertexId t) const {
  const TZPreprocessing& pre = scheme_->preprocessing();
  const std::uint32_t k = scheme_->k();
  // Bidirectional pivot walk (the distance-oracle loop with effective
  // pivots): terminates by level k-1 because A_{k-1} ⊆ B(x) for all x.
  VertexId u = s, v = t;
  VertexId w = u;  // ŵ_0(u) = u
  std::uint32_t i = 0;
  while (scheme_->lookup(v, w) == nullptr) {
    ++i;
    CROUTE_ASSERT(i < k, "handshake walk exceeded the hierarchy height");
    std::swap(u, v);
    w = pre.effective_pivot(i, u);
  }
  // Both endpoints are in C(w): v via the bunch lookup, u because w is an
  // effective pivot of u (or u itself when i == 0).
  const TableEntry* te = scheme_->lookup(t, w);
  CROUTE_ASSERT(te != nullptr,
                "handshake meeting tree misses the destination");
  return TZHeader{t, w, scheme_->table(t).own_label(*te)};
}

TreeDecision TZRouter::step(VertexId v, const TZHeader& header) const {
  const TableEntry* te = scheme_->lookup(v, header.tree_root);
  CROUTE_ASSERT(te != nullptr,
                "packet left the routing tree: vertex has no entry for it");
  return TreeRoutingScheme::decide(te->record, header.tree_label);
}

std::uint64_t TZRouter::header_bits(const TZHeader& header) const {
  BitWriter w;
  w.write_bits(header.tree_root,
               bits_for_universe(scheme_->graph().num_vertices()));
  TreeRoutingScheme::encode_label(header.tree_label, scheme_->tree_codec(), w);
  return w.bit_size();
}

}  // namespace croute

/// \file partitioned.hpp
/// \brief Routing over disconnected graphs: one scheme per component.
///
/// The paper (and TZScheme) assume a connected graph; real inputs often
/// are not. PartitionedScheme splits the host graph into its connected
/// components, builds an independent TZScheme per component, and
/// translates between host and component coordinates. Because
/// split_components renumbers vertices monotonically, every vertex's port
/// numbering in its component equals its port numbering in the host graph
/// — so component-level routing decisions drive the host-level simulator
/// directly, with only vertex-id translation.
///
/// Cross-component queries report "unreachable" instead of routing; the
/// component id is part of every address label (as the paper's schemes
/// assume for disconnected inputs).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/tz_router.hpp"
#include "core/tz_scheme.hpp"
#include "graph/connectivity.hpp"

namespace croute {

/// A TZ routing scheme over a possibly-disconnected graph.
class PartitionedScheme {
 public:
  /// Preprocesses every component of \p g (which must outlive *this).
  PartitionedScheme(const Graph& g, const TZSchemeOptions& options, Rng& rng);

  const Graph& graph() const noexcept { return *g_; }
  std::uint32_t num_components() const noexcept {
    return static_cast<std::uint32_t>(schemes_.size());
  }

  /// Component id of \p v (part of its address).
  std::uint32_t component_of(VertexId v) const { return comp_[v]; }
  bool reachable(VertexId s, VertexId t) const {
    return comp_[s] == comp_[t];
  }

  /// The scheme of one component (sizes, labels — component-local ids).
  const TZScheme& component_scheme(std::uint32_t c) const {
    return *schemes_[c];
  }

  /// Source decision in HOST coordinates: nullopt if t is unreachable.
  /// The header's target/tree_root are component-local ids; use step().
  std::optional<TZHeader> prepare(VertexId s, VertexId t) const;

  /// Per-hop decision at host vertex \p v for a header from prepare().
  /// Ports are host ports (identical to component ports by construction).
  TreeDecision step(VertexId v, const TZHeader& header) const;

  /// Host-coordinate accounting (table bits of v in its component scheme).
  std::uint64_t table_bits(VertexId v) const {
    return schemes_[comp_[v]]->table_bits(to_local_[v]);
  }
  /// Label bits of t plus the component id the address must carry.
  std::uint64_t label_bits(VertexId t) const;

 private:
  const Graph* g_;
  std::vector<std::uint32_t> comp_;      ///< host vertex -> component
  std::vector<VertexId> to_local_;       ///< host vertex -> component-local
  std::vector<Subgraph> parts_;          ///< keeps component graphs alive
  std::vector<std::unique_ptr<TZScheme>> schemes_;
  std::vector<std::unique_ptr<TZRouter>> routers_;
};

}  // namespace croute

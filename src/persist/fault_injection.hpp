/// \file fault_injection.hpp
/// \brief Deterministic filesystem fault injection for the artifact tier.
///
/// The crash-safety claims of src/persist are only as good as the failure
/// paths somebody actually exercised. FaultInjector is the lever: the
/// artifact store threads every write/fsync/rename through it, and a test
/// (or the CI kill/recover job, via the CROUTE_PERSIST_FAULT environment
/// variable) arms exactly one fault — fail the Nth write, write half of
/// it, report ENOSPC, fail the fsync, or SIGKILL the whole process at
/// that point. Whatever the injector does, the invariant under test is
/// the same: the previous generation's artifact and manifest stay intact,
/// so recovery always has something valid to land on.
///
/// Env syntax (parsed once by plan_from_env):
///   CROUTE_PERSIST_FAULT=<action>:<op>:<n>
/// with action ∈ fail|short|enospc|crash, op ∈ write|fsync|rename and n
/// the 1-based count of the faulting operation across the process's
/// store. Unset or malformed ⇒ no fault (a typo must never make CI pass
/// vacuously, so malformed values throw).

#pragma once

#include <cstdint>
#include <string>

namespace croute::persist {

/// Which filesystem operation a fault targets.
enum class FaultOp : std::uint8_t { kWrite = 0, kFsync = 1, kRename = 2 };

/// What happens when the armed operation count is reached.
enum class FaultAction : std::uint8_t {
  kNone,    ///< no fault armed
  kFail,    ///< the op fails cleanly (EIO-style)
  kShort,   ///< write half the bytes, then fail (torn write)
  kEnospc,  ///< the op fails as if the disk filled
  kCrash,   ///< SIGKILL the process at the op (kill/recover smoke)
};

struct FaultPlan {
  FaultAction action = FaultAction::kNone;
  FaultOp op = FaultOp::kWrite;
  std::uint64_t at = 0;  ///< 1-based count of the faulting operation
};

/// Parses CROUTE_PERSIST_FAULT (empty plan when unset; throws
/// std::invalid_argument on malformed values).
FaultPlan plan_from_env();

/// Counts operations and fires the armed plan once. Not thread-safe by
/// design: the store serializes publishes, and tests drive it single-
/// threaded.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  /// Registers one operation of kind \p op and returns the action the
  /// caller must apply to it (kNone until the armed count is reached;
  /// the plan fires exactly once).
  FaultAction on_op(FaultOp op) noexcept {
    const auto idx = static_cast<std::size_t>(op);
    ++counts_[idx];
    if (fired_ || plan_.action == FaultAction::kNone || plan_.op != op ||
        counts_[idx] != plan_.at) {
      return FaultAction::kNone;
    }
    fired_ = true;
    return plan_.action;
  }

  void arm(FaultPlan plan) noexcept {
    plan_ = plan;
    fired_ = false;
    counts_[0] = counts_[1] = counts_[2] = 0;
  }

  std::uint64_t ops_seen(FaultOp op) const noexcept {
    return counts_[static_cast<std::size_t>(op)];
  }
  bool fired() const noexcept { return fired_; }

 private:
  FaultPlan plan_;
  bool fired_ = false;
  std::uint64_t counts_[3] = {0, 0, 0};
};

}  // namespace croute::persist

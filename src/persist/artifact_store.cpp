#include "persist/artifact_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace croute::persist {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kWriteChunk = std::size_t{1} << 20;  ///< 1 MiB
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "croute-manifest v1";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

[[noreturn]] void fail_sys(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " failed for " + path + ": " +
                           std::strerror(errno));
}

/// Closes the fd on scope exit (exception paths must not leak it).
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  void release() { fd = -1; }
};

/// "scheme-%08llu.art" → generation; nullopt for anything else (tmp
/// litter, MANIFEST, foreign files).
std::uint64_t parse_generation(const std::string& name) {
  unsigned long long gen = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "scheme-%llu.ar%c", &gen, &tail) == 2 &&
      tail == 't' && name.size() >= 5 &&
      name.compare(name.size() - 4, 4, ".art") == 0) {
    return gen;
  }
  return 0;
}

std::string generation_name(std::uint64_t gen) {
  char name[32];
  std::snprintf(name, sizeof name, "scheme-%08llu.art",
                static_cast<unsigned long long>(gen));
  return name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  if (!is.good() && !is.eof()) throw std::runtime_error("cannot read " + path);
  return std::move(os).str();
}

}  // namespace

ArtifactStore::ArtifactStore(StoreOptions options, obs::MetricRegistry* metrics,
                             obs::TraceRecorder* trace)
    : options_(std::move(options)), trace_(trace) {
  if (options_.retain == 0) options_.retain = 1;
  // Malformed fault specs throw here, at configuration time — a typo'd
  // CROUTE_PERSIST_FAULT must never make a fault test pass vacuously.
  injector_.arm(plan_from_env());
  std::error_code ec;
  fs::create_directories(options_.dir, ec);  // publish reports failures
  if (metrics != nullptr) {
    written_ = &metrics->counter("croute_persist_artifacts_written_total",
                                 "scheme artifacts published atomically");
    recovered_ = &metrics->counter("croute_persist_artifacts_recovered_total",
                                   "scheme artifacts recovered at startup");
    rejected_ = &metrics->counter(
        "croute_persist_artifacts_rejected_total",
        "artifact candidates rejected during recovery (corrupt, "
        "incompatible, or version-skewed)");
    publish_failures_ = &metrics->counter(
        "croute_persist_publish_failures_total",
        "artifact publishes that failed (service kept serving from memory)");
    bytes_written_ = &metrics->counter("croute_persist_bytes_written_total",
                                       "artifact bytes written (pre-fsync)");
    verify_us_ = &metrics->histogram(
        "croute_persist_verify_us",
        "read + verify + decode wall time of a successful recovery");
  }
  last_published_ = newest_generation();
}

void ArtifactStore::atomic_write(const std::string& path,
                                 std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  FdGuard fd;
  fd.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd.fd < 0) fail_sys("open", tmp);

  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t len = std::min(kWriteChunk, bytes.size() - off);
    switch (injector_.on_op(FaultOp::kWrite)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kCrash:
        // Die like the power did: whatever chunks already landed form a
        // realistic torn prefix under the .tmp name (never the live one).
        std::raise(SIGKILL);
        break;
      case FaultAction::kShort:
        // A torn write: half the chunk reaches the disk, then the error
        // surfaces. The .tmp stays behind as litter (swept next publish).
        (void)!::write(fd.fd, bytes.data() + off, len / 2);
        throw std::runtime_error("injected short write on " + tmp);
      case FaultAction::kFail:
        throw std::runtime_error("injected write failure on " + tmp);
      case FaultAction::kEnospc:
        errno = ENOSPC;
        fail_sys("write (injected ENOSPC)", tmp);
    }
    const ssize_t wrote = ::write(fd.fd, bytes.data() + off,
                                  static_cast<std::size_t>(len));
    if (wrote != static_cast<ssize_t>(len)) fail_sys("write", tmp);
    off += len;
  }

  switch (injector_.on_op(FaultOp::kFsync)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kCrash:
      std::raise(SIGKILL);
      break;
    default:
      throw std::runtime_error("injected fsync failure on " + tmp);
  }
  if (::fsync(fd.fd) != 0) fail_sys("fsync", tmp);
  ::close(fd.fd);
  fd.release();

  switch (injector_.on_op(FaultOp::kRename)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kCrash:
      std::raise(SIGKILL);
      break;
    default:
      throw std::runtime_error("injected rename failure on " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail_sys("rename", tmp);

  // Persist the rename itself: fsync the directory so the new name
  // survives a crash (a file can be durable under a name that is not).
  FdGuard dfd;
  dfd.fd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd.fd >= 0) {
    switch (injector_.on_op(FaultOp::kFsync)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kCrash:
        std::raise(SIGKILL);
        break;
      default:
        throw std::runtime_error("injected directory fsync failure on " +
                                 options_.dir);
    }
    if (::fsync(dfd.fd) != 0) fail_sys("fsync directory", options_.dir);
  }
}

void ArtifactStore::write_manifest(const std::string& live,
                                   const std::string& backup) {
  std::string text = std::string(kManifestHeader) + "\nlive " + live +
                     "\nbackup " + (backup.empty() ? "-" : backup) + "\n";
  atomic_write(options_.dir + "/" + kManifestName, text);
}

std::vector<std::string> ArtifactStore::manifest_candidates() const {
  std::vector<std::string> out;
  std::ifstream is(options_.dir + "/" + kManifestName);
  if (!is) return out;
  std::string line;
  if (!std::getline(is, line) || line != kManifestHeader) return out;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key, value;
    ls >> key >> value;
    if ((key == "live" || key == "backup") && !value.empty() && value != "-" &&
        value.find('/') == std::string::npos) {
      out.push_back(value);
    }
  }
  return out;
}

std::vector<std::string> ArtifactStore::scan_artifacts() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::uint64_t gen = parse_generation(name);
    if (gen != 0) found.emplace_back(gen, name);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [gen, name] : found) out.push_back(std::move(name));
  return out;
}

std::uint64_t ArtifactStore::newest_generation() const {
  const auto names = scan_artifacts();
  return names.empty() ? 0 : parse_generation(names.front());
}

void ArtifactStore::retire_old(const std::string& live,
                               const std::string& backup) {
  const auto names = scan_artifacts();  // newest first
  std::uint32_t kept = 0;
  for (const std::string& name : names) {
    const bool pinned = name == live || name == backup;
    if (kept < options_.retain || pinned) {
      ++kept;
      continue;
    }
    std::error_code ec;
    fs::remove(fs::path(options_.dir) / name, ec);  // best-effort
  }
}

PublishResult ArtifactStore::publish_generation(const SchemePackage& pkg) {
  const std::lock_guard<std::mutex> lock(publish_mu_);
  using clock = std::chrono::steady_clock;
  PublishResult res;
  obs::TraceRecorder::Span span(trace_, "artifact_publish", "persist");
  try {
    std::string reason;
    if (!package_persistable(pkg, &reason)) {
      res.error = reason;
      if (publish_failures_ != nullptr) publish_failures_->inc();
      return res;
    }
    // Sweep .tmp litter from crashed publishes before making more.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
      if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
    }

    res.generation = std::max(last_published_, newest_generation()) + 1;
    const auto t0 = clock::now();
    const std::string bytes = encode_package(pkg, res.generation);
    res.encode_s = seconds_since(t0);
    res.bytes = bytes.size();

    const std::string name = generation_name(res.generation);
    const std::string path = options_.dir + "/" + name;
    const auto t1 = clock::now();
    atomic_write(path, bytes);
    // Demote the previous live artifact (if it still exists) to backup.
    std::string backup;
    const auto prev = manifest_candidates();
    if (!prev.empty() && prev.front() != name &&
        fs::exists(fs::path(options_.dir) / prev.front())) {
      backup = prev.front();
    }
    write_manifest(name, backup);
    retire_old(name, backup);
    res.write_s = seconds_since(t1);
    res.path = path;
    res.ok = true;
    last_published_ = res.generation;
    if (written_ != nullptr) written_->inc();
    if (bytes_written_ != nullptr) bytes_written_->inc(res.bytes);
    span.arg("generation", static_cast<double>(res.generation));
    span.arg("bytes", static_cast<double>(res.bytes));
  } catch (const std::exception& e) {
    res.error = e.what();
    if (publish_failures_ != nullptr) publish_failures_->inc();
  }
  return res;
}

RecoverResult ArtifactStore::recover_newest(const RouteServiceOptions& serving,
                                            VertexId expected_n) {
  using clock = std::chrono::steady_clock;
  RecoverResult out;
  obs::TraceRecorder::Span span(trace_, "artifact_recover", "persist");
  // Candidate order IS the degradation ladder: the manifest's live
  // artifact, its retained backup, then anything else in the directory
  // newest-first (a stale or missing manifest must not strand an intact
  // artifact).
  std::vector<std::string> candidates = manifest_candidates();
  for (std::string& name : scan_artifacts()) {
    if (std::find(candidates.begin(), candidates.end(), name) ==
        candidates.end()) {
      candidates.push_back(std::move(name));
    }
  }
  for (const std::string& name : candidates) {
    const std::string path = options_.dir + "/" + name;
    const auto t0 = clock::now();
    try {
      obs::TraceRecorder::Span verify(trace_, "artifact_verify", "persist");
      const std::string bytes = read_file(path);
      // Header-only pass first: version skew and torn files bounce here,
      // before any payload decoding.
      const ArtifactMeta meta = read_artifact_meta(bytes);
      if (meta.n != expected_n) {
        throw std::invalid_argument(
            "artifact: built for n=" + std::to_string(meta.n) +
            ", service generates n=" + std::to_string(expected_n));
      }
      out.package = decode_package(bytes, serving, &out.meta);
      verify.finish();
      out.verify_s = seconds_since(t0);
      out.path = path;
      out.note = "recovered generation " + std::to_string(out.meta.generation) +
                 " from " + name;
      if (!out.rejected.empty()) {
        out.note += " (after " + std::to_string(out.rejected.size()) +
                    " rejected candidate" +
                    (out.rejected.size() == 1 ? ")" : "s)");
      }
      if (recovered_ != nullptr) recovered_->inc();
      if (verify_us_ != nullptr) verify_us_->record(0, out.verify_s * 1e6);
      span.arg("generation", static_cast<double>(out.meta.generation));
      span.arg("rejected", static_cast<double>(out.rejected.size()));
      return out;
    } catch (const std::exception& e) {
      // Graceful degradation: record the reason, fall one candidate
      // further down the ladder. Never let hostile bytes escape as a
      // crash — the caller's last rung is a fresh preprocessing run.
      out.rejected.push_back(name + ": " + e.what());
      if (rejected_ != nullptr) rejected_->inc();
    }
  }
  out.note = candidates.empty()
                 ? "no artifacts in " + options_.dir
                 : "no valid artifact (" + std::to_string(out.rejected.size()) +
                       " candidate(s) rejected)";
  span.arg("rejected", static_cast<double>(out.rejected.size()));
  return out;
}

}  // namespace croute::persist

/// \file artifact.hpp
/// \brief The on-disk scheme artifact: a versioned, section-checksummed,
/// relocatable container for one full SchemePackage generation.
///
/// A million-user routing service must survive being killed; paying full
/// TZ preprocessing plus flat compilation on every start is the cost this
/// tier removes. An artifact carries everything a generation serves from —
/// the graph copy, the TZ preprocessing (scheme_io bytes), and the
/// compiled flat pools for EVERY SchemeKind (the old warm-start path
/// covered TZ only) — so a restart is a read + verify + pointer fix-up,
/// not a rebuild.
///
/// Layout (all little-endian, util/serialize.hpp):
///
///   header   magic "croutea1" · format version · generation metadata
///            (scheme kind, k, sampling, seed, n, options digest, graph
///            fingerprint, generation number, build host/ISA stamp) ·
///            section table (id, absolute offset, size, CRC32C each) ·
///            CRC32C of the header bytes
///   payload  sections back to back (GRAPH, TZ, FLAT_TZ, FLAT_COWEN,
///            FLAT_FULL — whichever the package carries)
///   trailer  CRC32C of everything before it (whole-file)
///
/// The dual stamps — format version for the *container*, the metadata
/// digests for the *generation* — mean a loader rejects incompatible or
/// torn artifacts from the header alone, before touching payload bytes;
/// per-section sums then localize any corruption to the section that
/// rotted. Loaded state is byte-identical to a fresh build on the same
/// (graph, options): the TZ bytes go through scheme_io's proven
/// round-trip, the flat pools are stored verbatim, and the only derived
/// state (the FKS perfect-hash indexes, bits-by-length tables) is
/// recomputed from the same seeds it was originally drawn from.
///
/// Everything here is pure bytes-in/bytes-out; the atomic file lifecycle
/// (tmp → fsync → rename, MANIFEST, retention, fault injection) lives in
/// artifact_store.hpp.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/scheme_package.hpp"

namespace croute::persist {

/// Container format version (bump on layout changes; loaders reject
/// anything else — version skew falls back to fresh preprocessing).
inline constexpr std::uint32_t kArtifactFormatVersion = 1;

/// Generation metadata, readable from the header alone.
struct ArtifactMeta {
  std::uint32_t format_version = 0;
  SchemeKind scheme = SchemeKind::kTZDirect;
  SamplingMode sampling = SamplingMode::kCentered;
  bool use_flat = true;
  FlatLookup flat_lookup = FlatLookup::kEytzinger;
  bool warm_started = false;  ///< generation originated from a warm start
  std::uint32_t k = 0;
  VertexId n = 0;             ///< vertex count of the payload graph
  std::uint64_t seed = 0;
  std::uint64_t options_digest = 0;  ///< content_options_digest at build
  std::uint64_t graph_digest = 0;    ///< graph_fingerprint of the payload
  std::uint64_t generation = 0;      ///< store generation number
  std::string build_host;            ///< SIMD ISA + CRC backend stamp
};

/// Digest over the options fields that determine a package's bytes
/// (scheme, k, sampling, seed, use_flat, flat_lookup). Serving knobs
/// (threads, batch_group, metrics, record_paths) do not participate: a
/// recovered artifact serves under whatever serving options the process
/// was started with.
std::uint64_t content_options_digest(const RouteServiceOptions& options);

/// Whether \p pkg can be written as an artifact. The only unpersistable
/// shape is a legacy (use_flat = false) baseline package — CowenScheme /
/// FullTableScheme preprocessing layouts are not serialized; their flat
/// pools are. Returns false with a recorded reason instead of throwing:
/// graceful degradation means the store logs why and the service simply
/// pays a fresh build on the next start.
bool package_persistable(const SchemePackage& pkg, std::string* reason);

/// Serializes \p pkg into artifact bytes (throws std::invalid_argument
/// when !package_persistable).
std::string encode_package(const SchemePackage& pkg,
                           std::uint64_t generation);

/// Header-only validation: magic, format version, header CRC, whole-file
/// CRC, section table sanity. Throws std::invalid_argument (with byte
/// offsets) on anything torn or alien; does not touch payload decoding.
ArtifactMeta read_artifact_meta(std::string_view bytes);

/// Full decode: verifies the header AND every section checksum, then
/// reconstructs the package. Content options must match \p serving
/// (digest equality); serving-only knobs are taken from \p serving. The
/// returned package owns its graph and is indistinguishable from a fresh
/// build_scheme_package on the same (graph, content options) — the
/// byte-identity contract tests/test_persist.cpp pins. Throws
/// std::invalid_argument on any mismatch or corruption; never crashes on
/// hostile bytes (tests/test_fuzz.cpp's mutation corpus).
SchemePackagePtr decode_package(std::string_view bytes,
                                const RouteServiceOptions& serving,
                                ArtifactMeta* meta_out = nullptr);

}  // namespace croute::persist

#include "persist/artifact.hpp"

#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <utility>
#include <vector>

#include "core/scheme_io.hpp"
#include "simd/simd.hpp"
#include "util/crc32c.hpp"
#include "util/random.hpp"
#include "util/serialize.hpp"

namespace croute {
namespace {

/// "croutea1" as a little-endian u64 (artifact, format family 1).
constexpr std::uint64_t kMagic = 0x31616574756F7263ULL;

// Section ids. An artifact carries whichever of these its package does;
// the loader locates them by id, so the order on disk is irrelevant
// (relocatable) and unknown future ids are a clean version-skew error,
// never an out-of-bounds read.
constexpr std::uint32_t kSecGraph = 1;      ///< edge list, rebuilt via GraphBuilder
constexpr std::uint32_t kSecTZ = 2;         ///< scheme_io bytes (TZ preprocessing)
constexpr std::uint32_t kSecFlatTZ = 3;     ///< FlatScheme pools
constexpr std::uint32_t kSecFlatCowen = 4;  ///< FlatCowen pools
constexpr std::uint32_t kSecFlatFull = 5;   ///< FlatFullTable pools

constexpr std::uint32_t kMaxSections = 16;
constexpr std::uint32_t kMaxHostLen = 256;

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("artifact: " + what);
}

/// Bounds-checked little-endian reader over a byte span. Unlike
/// BinaryReader (streams) this never copies payload bytes into an
/// istream first — sections decode straight out of the mapped artifact —
/// and every failure carries the absolute byte offset where it died.
class SpanReader {
 public:
  SpanReader(std::string_view bytes, std::uint64_t base_offset = 0)
      : data_(bytes.data()), size_(bytes.size()), base_(base_offset) {}

  std::uint64_t offset() const noexcept { return base_ + pos_; }
  std::uint64_t remaining() const noexcept { return size_ - pos_; }

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = scalar<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  template <typename T>
  std::vector<T> vec_u32() {
    static_assert(sizeof(T) == 4);
    return vec<T>();
  }
  std::vector<std::uint64_t> vec_u64() { return vec<std::uint64_t>(); }
  std::vector<double> vec_f64() { return vec<double>(); }

  std::string str() {
    const std::uint64_t len = u32();
    if (len > kMaxHostLen) {
      reject("implausible string length at byte offset " +
             std::to_string(offset() - 4));
    }
    need(len);
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  template <typename T>
  T scalar() {
    static_assert(std::endian::native == std::endian::little,
                  "big-endian hosts need byte swaps here");
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> vec() {
    const std::uint64_t count = u64();
    // A hostile length prefix must fail here, not in operator new: the
    // remaining span bounds what any honest count can be.
    if (count > remaining() / sizeof(T)) {
      reject("implausible array length at byte offset " +
             std::to_string(offset() - 8));
    }
    std::vector<T> v(count);
    if (count > 0) {
      std::memcpy(v.data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return v;
  }
  void need(std::uint64_t bytes) {
    if (bytes > remaining()) {
      reject("truncated at byte offset " + std::to_string(offset()) +
             " (wanted " + std::to_string(bytes) + " more bytes)");
    }
  }

  const char* data_;
  std::uint64_t size_;
  std::uint64_t base_;  ///< absolute offset of data_[0] in the artifact
  std::uint64_t pos_ = 0;
};

/// Read-only streambuf over artifact bytes, so the TZ section feeds
/// scheme_io's istream loader without copying megabytes into a string.
class MemBuf final : public std::streambuf {
 public:
  MemBuf(const char* p, std::size_t n) {
    char* b = const_cast<char*>(p);  // setg wants char*; we never write
    setg(b, b, b + n);
  }
};

struct Section {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

struct ParsedHeader {
  persist::ArtifactMeta meta;
  std::vector<Section> sections;
  std::uint64_t header_bytes = 0;  ///< size of header incl. its CRC
};

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecGraph: return "GRAPH";
    case kSecTZ: return "TZ";
    case kSecFlatTZ: return "FLAT_TZ";
    case kSecFlatCowen: return "FLAT_COWEN";
    case kSecFlatFull: return "FLAT_FULL";
  }
  return "?";
}

}  // namespace

/// The friend serializer FlatScheme/FlatCowen/FlatFullTable grant pool
/// access to (the SchemeSerializer pattern scheme_io uses over TZScheme).
/// Not in the anonymous namespace — the friend declarations name
/// croute::ArtifactCodec. Encode writes pools verbatim; decode fills a
/// default-constructed view, validates every CSR invariant the routers
/// rely on, rebinds the base pointer, and recomputes the only derived
/// state (FKS indexes) from the persisted seed — same seed, same bytes.
class ArtifactCodec {
 public:
  // --- FlatScheme -----------------------------------------------------------
  static void encode_flat(BinaryWriter& w, const FlatScheme& f) {
    w.u8(f.options_.lookup == FlatLookup::kFKS ? 1 : 0);
    w.u64(f.options_.hash_seed);
    w.vec_u32(f.tbl_off_);
    w.vec_u32(f.tbl_key_);
    w.u64(f.tbl_record_.size());
    for (const TreeNodeRecord& r : f.tbl_record_) {
      w.u32(r.dfs_in);
      w.u32(r.dfs_out);
      w.u32(r.heavy_in);
      w.u32(r.heavy_out);
      w.u32(r.heavy_port);
      w.u32(r.parent_port);
      w.u32(r.light_depth);
    }
    w.vec_f64(f.tbl_dist_);
    w.vec_u32(f.tbl_level_);
    w.vec_u32(f.tbl_own_dfs_);
    w.vec_u32(f.tbl_own_light_off_);
    w.vec_u32(f.tbl_own_light_len_);
    w.vec_u32(f.tbl_light_pool_);
    w.vec_u32(f.dir_off_);
    w.vec_u32(f.dir_key_);
    w.vec_u32(f.dir_dfs_);
    w.vec_u32(f.dir_light_off_);
    w.vec_u32(f.dir_light_len_);
    w.vec_u32(f.dir_light_pool_);
    w.vec_u32(f.lab_off_);
    w.u64(f.lab_entries_.size());
    for (const FlatScheme::LabelEntryView& e : f.lab_entries_) {
      w.u32(e.level);
      w.u32(e.w);
      w.f64(e.dist);
      w.u32(e.dfs_in);
      w.u32(e.light_off);
      w.u32(e.light_len);
    }
    w.vec_u32(f.lab_light_pool_);
    w.vec_u64(f.bits_by_len_);
    w.u64(f.header_fixed_bits_);
    w.u32(f.port_bits_);
  }

  static std::unique_ptr<const FlatScheme> decode_flat(SpanReader& r,
                                                       const TZScheme& tz) {
    std::unique_ptr<FlatScheme> f(new FlatScheme());
    const std::uint8_t lookup = r.u8();
    if (lookup > 1) reject("FLAT_TZ: unknown lookup layout");
    f->options_.lookup = lookup == 1 ? FlatLookup::kFKS : FlatLookup::kEytzinger;
    f->options_.hash_seed = r.u64();
    f->tbl_off_ = r.vec_u32<std::uint32_t>();
    f->tbl_key_ = r.vec_u32<VertexId>();
    const std::uint64_t nrec = r.u64();
    if (nrec != f->tbl_key_.size()) reject("FLAT_TZ: record/key count mismatch");
    f->tbl_record_.resize(nrec);
    for (TreeNodeRecord& rec : f->tbl_record_) {
      rec.dfs_in = r.u32();
      rec.dfs_out = r.u32();
      rec.heavy_in = r.u32();
      rec.heavy_out = r.u32();
      rec.heavy_port = r.u32();
      rec.parent_port = r.u32();
      rec.light_depth = r.u32();
    }
    f->tbl_dist_ = r.vec_f64();
    f->tbl_level_ = r.vec_u32<std::uint32_t>();
    f->tbl_own_dfs_ = r.vec_u32<std::uint32_t>();
    f->tbl_own_light_off_ = r.vec_u32<std::uint32_t>();
    f->tbl_own_light_len_ = r.vec_u32<std::uint32_t>();
    f->tbl_light_pool_ = r.vec_u32<Port>();
    check_csr("FLAT_TZ tables", tz.graph().num_vertices(), f->tbl_off_,
              f->tbl_key_.size());
    if (f->tbl_dist_.size() != nrec || f->tbl_level_.size() != nrec ||
        f->tbl_own_dfs_.size() != nrec || f->tbl_own_light_off_.size() != nrec ||
        f->tbl_own_light_len_.size() != nrec) {
      reject("FLAT_TZ: table payload arrays disagree on entry count");
    }
    check_slices("FLAT_TZ own-light", f->tbl_own_light_off_,
                 f->tbl_own_light_len_, f->tbl_light_pool_.size());

    f->dir_off_ = r.vec_u32<std::uint32_t>();
    f->dir_key_ = r.vec_u32<VertexId>();
    f->dir_dfs_ = r.vec_u32<std::uint32_t>();
    f->dir_light_off_ = r.vec_u32<std::uint32_t>();
    f->dir_light_len_ = r.vec_u32<std::uint32_t>();
    f->dir_light_pool_ = r.vec_u32<Port>();
    check_csr("FLAT_TZ directories", tz.graph().num_vertices(), f->dir_off_,
              f->dir_key_.size());
    if (f->dir_dfs_.size() != f->dir_key_.size() ||
        f->dir_light_off_.size() != f->dir_key_.size() ||
        f->dir_light_len_.size() != f->dir_key_.size()) {
      reject("FLAT_TZ: directory payload arrays disagree on entry count");
    }
    check_slices("FLAT_TZ dir-light", f->dir_light_off_, f->dir_light_len_,
                 f->dir_light_pool_.size());

    f->lab_off_ = r.vec_u32<std::uint32_t>();
    const std::uint64_t nlab = r.u64();
    f->lab_entries_.resize(nlab);
    for (FlatScheme::LabelEntryView& e : f->lab_entries_) {
      e.level = r.u32();
      e.w = r.u32();
      e.dist = r.f64();
      e.dfs_in = r.u32();
      e.light_off = r.u32();
      e.light_len = r.u32();
    }
    f->lab_light_pool_ = r.vec_u32<Port>();
    check_csr("FLAT_TZ labels", tz.graph().num_vertices(), f->lab_off_, nlab);
    for (const FlatScheme::LabelEntryView& e : f->lab_entries_) {
      if (std::uint64_t{e.light_off} + e.light_len >
          f->lab_light_pool_.size()) {
        reject("FLAT_TZ: label light slice out of pool bounds");
      }
    }
    f->bits_by_len_ = r.vec_u64();
    f->header_fixed_bits_ = r.u64();
    f->port_bits_ = r.u32();

    f->base_ = &tz;
    // The FKS indexes are derived state: rebuilt from the persisted seed
    // they come out byte-identical to the original compile's (the same
    // invariant scheme_io relies on for TZScheme's hash index).
    f->compile_hashes(nullptr);
    f->stats_.pool_bytes = f->pool_bytes();
    f->stats_.threads = 1;
    return f;
  }

  // --- FlatCowen ------------------------------------------------------------
  static void encode_cowen(BinaryWriter& w, const FlatCowen& c) {
    w.u32(c.n_);
    w.u32(c.id_bits_);
    w.u32(c.num_landmarks_);
    w.u64(c.label_bits_);
    w.vec_u32(c.cl_off_);
    w.vec_u32(c.cl_key_);
    w.vec_u32(c.cl_port_);
    w.vec_u32(c.lport_);
    w.u64(c.labels_.size());
    for (const FlatCowen::Label& l : c.labels_) {
      w.u32(l.t);
      w.u32(l.home);
      w.u32(l.port_at_home);
      w.u32(l.home_col);
    }
  }

  static std::unique_ptr<const FlatCowen> decode_cowen(SpanReader& r,
                                                       const Graph& g) {
    std::unique_ptr<FlatCowen> c(new FlatCowen());
    c->n_ = r.u32();
    if (c->n_ != g.num_vertices()) {
      reject("FLAT_COWEN: vertex count disagrees with the graph section");
    }
    c->id_bits_ = r.u32();
    c->num_landmarks_ = r.u32();
    c->label_bits_ = r.u64();
    c->cl_off_ = r.vec_u32<std::uint32_t>();
    c->cl_key_ = r.vec_u32<VertexId>();
    c->cl_port_ = r.vec_u32<Port>();
    c->lport_ = r.vec_u32<Port>();
    check_csr("FLAT_COWEN clusters", c->n_, c->cl_off_, c->cl_key_.size());
    if (c->cl_port_.size() != c->cl_key_.size()) {
      reject("FLAT_COWEN: cluster port/key count mismatch");
    }
    if (c->lport_.size() !=
        std::uint64_t{c->n_} * c->num_landmarks_) {
      reject("FLAT_COWEN: landmark port matrix has the wrong shape");
    }
    const std::uint64_t nlab = r.u64();
    if (nlab != c->n_) reject("FLAT_COWEN: label count != n");
    c->labels_.resize(nlab);
    for (FlatCowen::Label& l : c->labels_) {
      l.t = r.u32();
      l.home = r.u32();
      l.port_at_home = r.u32();
      l.home_col = r.u32();
      if (l.home_col != FlatCowen::kNoColumn &&
          l.home_col >= c->num_landmarks_) {
        reject("FLAT_COWEN: label home column out of range");
      }
    }
    c->g_ = &g;
    return c;
  }

  // --- FlatFullTable --------------------------------------------------------
  static void encode_full(BinaryWriter& w, const FlatFullTable& t) {
    w.u32(t.n_);
    w.u64(t.label_bits_);
    w.vec_u32(t.hops_);
  }

  static std::unique_ptr<const FlatFullTable> decode_full(SpanReader& r,
                                                          const Graph& g) {
    std::unique_ptr<FlatFullTable> t(new FlatFullTable());
    t->n_ = r.u32();
    if (t->n_ != g.num_vertices()) {
      reject("FLAT_FULL: vertex count disagrees with the graph section");
    }
    t->label_bits_ = r.u64();
    t->hops_ = r.vec_u32<Port>();
    if (t->hops_.size() != std::uint64_t{t->n_} * t->n_) {
      reject("FLAT_FULL: hop matrix has the wrong shape");
    }
    t->g_ = &g;
    return t;
  }

 private:
  /// CSR offsets invariants every router lookup assumes: size n+1,
  /// starts at 0, monotone, last == pool size.
  static void check_csr(const char* what, VertexId n,
                        const std::vector<std::uint32_t>& off,
                        std::uint64_t pool) {
    if (off.size() != std::uint64_t{n} + 1 || off.front() != 0 ||
        off.back() != pool) {
      reject(std::string(what) + ": CSR offsets have the wrong shape");
    }
    for (std::size_t i = 1; i < off.size(); ++i) {
      if (off[i] < off[i - 1]) {
        reject(std::string(what) + ": CSR offsets not monotone");
      }
    }
  }
  static void check_slices(const char* what,
                           const std::vector<std::uint32_t>& offs,
                           const std::vector<std::uint32_t>& lens,
                           std::uint64_t pool) {
    for (std::size_t i = 0; i < offs.size(); ++i) {
      if (std::uint64_t{offs[i]} + lens[i] > pool) {
        reject(std::string(what) + ": slice out of pool bounds");
      }
    }
  }
};

}  // namespace croute

namespace croute::persist {

namespace {

std::string isa_stamp() {
  return std::string(simd::ops().name) + "/" + crc32c_backend();
}

std::string encode_graph_section(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  w.u32(g.num_vertices());
  w.u64(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Arc& a : g.arcs(v)) {
      if (a.head > v) {
        w.u32(v);
        w.u32(a.head);
        w.f64(a.weight);
      }
    }
  }
  return std::move(os).str();
}

std::shared_ptr<const Graph> decode_graph_section(std::string_view bytes,
                                                  std::uint64_t base) {
  SpanReader r(bytes, base);
  const VertexId n = r.u32();
  const std::uint64_t m = r.u64();
  if (m > bytes.size() / 16) {  // 16 bytes per edge record
    reject("GRAPH: implausible edge count");
  }
  GraphBuilder builder(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const VertexId u = r.u32();
    const VertexId v = r.u32();
    const Weight w = r.f64();
    if (u >= n || v >= n) reject("GRAPH: edge endpoint out of range");
    builder.add_edge(u, v, w);
  }
  // GraphBuilder::build canonicalizes (sorted arcs, deterministic
  // reverse ports), so this reconstruction is bit-identical to the
  // graph the artifact was written from — the fingerprint check in
  // decode_package pins it.
  return std::make_shared<const Graph>(builder.build());
}

void write_header(BinaryWriter& w, const ArtifactMeta& meta,
                  const std::vector<Section>& sections) {
  w.u64(kMagic);
  w.u32(kArtifactFormatVersion);
  w.u8(static_cast<std::uint8_t>(meta.scheme));
  w.u8(static_cast<std::uint8_t>(meta.sampling));
  w.u8(meta.use_flat ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(meta.flat_lookup));
  w.u8(meta.warm_started ? 1 : 0);
  w.u32(meta.k);
  w.u32(meta.n);
  w.u64(meta.seed);
  w.u64(meta.options_digest);
  w.u64(meta.graph_digest);
  w.u64(meta.generation);
  w.u32(static_cast<std::uint32_t>(meta.build_host.size()));
  for (const char c : meta.build_host) {
    w.u8(static_cast<std::uint8_t>(c));
  }
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const Section& s : sections) {
    w.u32(s.id);
    w.u64(s.offset);
    w.u64(s.size);
    w.u32(s.crc);
  }
}

/// Parses and validates the header: magic, version, field sanity, the
/// header CRC, and the section table's geometry (contiguous, inside the
/// payload area, no duplicate ids). Everything after this function is
/// entitled to trust the table's offsets.
ParsedHeader parse_header(std::string_view bytes) {
  SpanReader r(bytes);
  ParsedHeader h;
  const std::uint64_t magic = r.u64();
  if (magic != kMagic) {
    reject("bad magic (not an artifact, or the header is corrupt)");
  }
  h.meta.format_version = r.u32();
  if (h.meta.format_version != kArtifactFormatVersion) {
    reject("format version " + std::to_string(h.meta.format_version) +
           " (this build reads version " +
           std::to_string(kArtifactFormatVersion) + ")");
  }
  const std::uint8_t scheme = r.u8();
  if (scheme > static_cast<std::uint8_t>(SchemeKind::kFullTable)) {
    reject("unknown scheme kind in header");
  }
  h.meta.scheme = static_cast<SchemeKind>(scheme);
  const std::uint8_t sampling = r.u8();
  if (sampling > 1) reject("unknown sampling mode in header");
  h.meta.sampling = static_cast<SamplingMode>(sampling);
  h.meta.use_flat = r.u8() != 0;
  const std::uint8_t lookup = r.u8();
  if (lookup > 1) reject("unknown flat lookup layout in header");
  h.meta.flat_lookup = static_cast<FlatLookup>(lookup);
  h.meta.warm_started = r.u8() != 0;
  h.meta.k = r.u32();
  h.meta.n = r.u32();
  h.meta.seed = r.u64();
  h.meta.options_digest = r.u64();
  h.meta.graph_digest = r.u64();
  h.meta.generation = r.u64();
  h.meta.build_host = r.str();
  const std::uint32_t nsec = r.u32();
  if (nsec == 0 || nsec > kMaxSections) {
    reject("implausible section count in header");
  }
  h.sections.resize(nsec);
  for (Section& s : h.sections) {
    s.id = r.u32();
    s.offset = r.u64();
    s.size = r.u64();
    s.crc = r.u32();
  }
  const std::uint64_t crc_at = r.offset();
  const std::uint32_t header_crc = r.u32();
  if (crc32c(bytes.data(), crc_at) != header_crc) {
    reject("header checksum mismatch (torn or corrupted header)");
  }
  h.header_bytes = r.offset();

  // Geometry: sections are laid out back to back between the header and
  // the 4-byte whole-file CRC trailer. Anything else — overlap, gaps,
  // duplicated sections, a table pointing past the end — is rejected
  // here so no later stage computes an out-of-bounds slice.
  if (bytes.size() < h.header_bytes + 4) reject("no room for the file trailer");
  std::uint64_t expect = h.header_bytes;
  std::uint32_t seen_ids = 0;
  for (const Section& s : h.sections) {
    if (s.id == 0 || s.id > 31) reject("unknown section id in table");
    if (seen_ids & (1u << s.id)) {
      reject(std::string("duplicated section ") + section_name(s.id));
    }
    seen_ids |= 1u << s.id;
    if (s.offset != expect) reject("section table is not contiguous");
    if (s.size > bytes.size() - 4 - s.offset) {
      reject("section table points past the end of the file");
    }
    expect = s.offset + s.size;
  }
  if (expect != bytes.size() - 4) {
    reject("payload size disagrees with the section table");
  }
  return h;
}

void verify_file_crc(std::string_view bytes) {
  std::uint32_t file_crc;
  std::memcpy(&file_crc, bytes.data() + bytes.size() - 4, 4);
  if (crc32c(bytes.data(), bytes.size() - 4) != file_crc) {
    reject("whole-file checksum mismatch (torn or truncated artifact)");
  }
}

const Section* find_section(const ParsedHeader& h, std::uint32_t id) {
  for (const Section& s : h.sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::string_view section_bytes(std::string_view bytes, const ParsedHeader& h,
                               std::uint32_t id) {
  const Section* s = find_section(h, id);
  if (s == nullptr) {
    reject(std::string("missing required section ") + section_name(id));
  }
  // Localize corruption: the per-section sum says WHICH section rotted,
  // where the whole-file sum only says "something did".
  if (crc32c(bytes.data() + s->offset, s->size) != s->crc) {
    reject(std::string("section ") + section_name(id) +
           " checksum mismatch (payload corrupted at bytes [" +
           std::to_string(s->offset) + ", " +
           std::to_string(s->offset + s->size) + "))");
  }
  return bytes.substr(s->offset, s->size);
}

}  // namespace

std::uint64_t content_options_digest(const RouteServiceOptions& options) {
  // Only fields that determine the package's *bytes* participate;
  // serving knobs (threads, batch_group, metrics, record_paths) change
  // how a package is driven, never what it contains.
  std::uint64_t h = 0x6172746966616374ULL;  // "artifact"
  h = mix64(h ^ static_cast<std::uint64_t>(options.scheme));
  h = mix64(h ^ options.k);
  h = mix64(h ^ static_cast<std::uint64_t>(options.sampling));
  h = mix64(h ^ options.seed);
  h = mix64(h ^ (options.use_flat ? 1 : 2));
  h = mix64(h ^ static_cast<std::uint64_t>(options.flat_lookup));
  return h;
}

bool package_persistable(const SchemePackage& pkg, std::string* reason) {
  const bool is_tz = pkg.options.scheme == SchemeKind::kTZDirect ||
                     pkg.options.scheme == SchemeKind::kTZHandshake;
  if (!pkg.options.use_flat && !is_tz) {
    if (reason != nullptr) {
      *reason =
          "legacy (use_flat=false) Cowen/full-table preprocessing has no "
          "serialized form — only their flat pools do";
    }
    return false;
  }
  if (reason != nullptr) reason->clear();
  return true;
}

std::string encode_package(const SchemePackage& pkg,
                           std::uint64_t generation) {
  std::string why;
  if (!package_persistable(pkg, &why)) {
    throw std::invalid_argument("encode_package: " + why);
  }

  std::vector<std::pair<std::uint32_t, std::string>> payloads;
  payloads.emplace_back(kSecGraph, encode_graph_section(*pkg.graph));
  if (pkg.tz != nullptr) {
    std::ostringstream os(std::ios::binary);
    save_scheme(os, *pkg.tz);
    payloads.emplace_back(kSecTZ, std::move(os).str());
  }
  const auto pooled = [&](std::uint32_t id, const auto& view, auto encode) {
    std::ostringstream os(std::ios::binary);
    BinaryWriter w(os);
    encode(w, view);
    payloads.emplace_back(id, std::move(os).str());
  };
  if (pkg.flat != nullptr) {
    pooled(kSecFlatTZ, *pkg.flat, ArtifactCodec::encode_flat);
  }
  if (pkg.flat_cowen != nullptr) {
    pooled(kSecFlatCowen, *pkg.flat_cowen, ArtifactCodec::encode_cowen);
  }
  if (pkg.flat_full != nullptr) {
    pooled(kSecFlatFull, *pkg.flat_full, ArtifactCodec::encode_full);
  }

  ArtifactMeta meta;
  meta.format_version = kArtifactFormatVersion;
  meta.scheme = pkg.options.scheme;
  meta.sampling = pkg.options.sampling;
  meta.use_flat = pkg.options.use_flat;
  meta.flat_lookup = pkg.options.flat_lookup;
  meta.warm_started = !pkg.options.warm_start_path.empty();
  meta.k = pkg.options.k;
  meta.n = pkg.graph->num_vertices();
  meta.seed = pkg.options.seed;
  meta.options_digest = content_options_digest(pkg.options);
  meta.graph_digest = graph_fingerprint(*pkg.graph);
  meta.generation = generation;
  meta.build_host = isa_stamp();

  std::vector<Section> sections(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    sections[i].id = payloads[i].first;
    sections[i].size = payloads[i].second.size();
    sections[i].crc =
        crc32c(payloads[i].second.data(), payloads[i].second.size());
  }

  // Two-pass header: the fields are fixed-width, so a dry run with zero
  // offsets yields the exact header size, which fixes every offset.
  std::ostringstream dry(std::ios::binary);
  {
    BinaryWriter w(dry);
    write_header(w, meta, sections);
  }
  const std::uint64_t header_size = dry.str().size() + 4;  // + header CRC
  std::uint64_t off = header_size;
  for (Section& s : sections) {
    s.offset = off;
    off += s.size;
  }
  std::ostringstream hs(std::ios::binary);
  {
    BinaryWriter w(hs);
    write_header(w, meta, sections);
  }
  std::string header = std::move(hs).str();
  const std::uint32_t header_crc = crc32c(header.data(), header.size());
  header.append(reinterpret_cast<const char*>(&header_crc), 4);

  std::string out;
  out.reserve(off + 4);
  out += header;
  for (const auto& [id, body] : payloads) out += body;
  const std::uint32_t file_crc = crc32c(out.data(), out.size());
  out.append(reinterpret_cast<const char*>(&file_crc), 4);
  return out;
}

ArtifactMeta read_artifact_meta(std::string_view bytes) {
  ParsedHeader h = parse_header(bytes);
  verify_file_crc(bytes);
  return std::move(h.meta);
}

SchemePackagePtr decode_package(std::string_view bytes,
                                const RouteServiceOptions& serving,
                                ArtifactMeta* meta_out) {
  using clock = std::chrono::steady_clock;
  const auto begin = clock::now();

  const ParsedHeader h = parse_header(bytes);
  verify_file_crc(bytes);
  if (h.meta.scheme != serving.scheme) {
    reject(std::string("built for scheme '") + scheme_name(h.meta.scheme) +
           "', service runs '" + scheme_name(serving.scheme) + "'");
  }
  if (h.meta.options_digest != content_options_digest(serving)) {
    reject(
        "built under different construction options (digest mismatch: "
        "k/sampling/seed/use_flat/flat_lookup changed) — refusing to serve "
        "it");
  }

  auto pkg = std::make_shared<SchemePackage>();
  pkg->options = serving;
  // A recovered generation is NOT a warm start: its bytes are the fresh
  // build's bytes on (graph, seed), so it can anchor incremental rebuilds
  // — unless the artifact itself came from a warm-started build, whose
  // preprocessing is not a function of the seed.
  pkg->options.warm_start_path = h.meta.warm_started ? "(artifact)" : "";

  const Section* graph_sec = find_section(h, kSecGraph);
  const std::string_view graph_bytes = section_bytes(bytes, h, kSecGraph);
  pkg->graph = decode_graph_section(graph_bytes, graph_sec->offset);
  if (graph_fingerprint(*pkg->graph) != h.meta.graph_digest) {
    reject("graph payload does not match its recorded fingerprint");
  }
  const Graph& g = *pkg->graph;

  const bool is_tz = serving.scheme == SchemeKind::kTZDirect ||
                     serving.scheme == SchemeKind::kTZHandshake;
  if (is_tz) {
    const std::string_view tz_bytes = section_bytes(bytes, h, kSecTZ);
    MemBuf buf(tz_bytes.data(), tz_bytes.size());
    std::istream is(&buf);
    pkg->tz = std::make_unique<const TZScheme>(load_scheme(is, g));
    if (serving.use_flat) {
      const Section* sec = find_section(h, kSecFlatTZ);
      const std::string_view fb = section_bytes(bytes, h, kSecFlatTZ);
      SpanReader r(fb, sec->offset);
      pkg->flat = ArtifactCodec::decode_flat(r, *pkg->tz);
      if (pkg->flat->lookup_kind() != serving.flat_lookup) {
        reject("FLAT_TZ: pooled lookup layout disagrees with the header");
      }
      pkg->flat_router = std::make_unique<const FlatRouter>(*pkg->flat);
      pkg->flat_stats = pkg->flat->compile_stats();
    } else {
      pkg->sim = std::make_unique<const Simulator>(
          g, SimOptions{0, serving.record_paths});
    }
  } else if (serving.scheme == SchemeKind::kCowen) {
    const Section* sec = find_section(h, kSecFlatCowen);
    const std::string_view cb = section_bytes(bytes, h, kSecFlatCowen);
    SpanReader r(cb, sec->offset);
    pkg->flat_cowen = ArtifactCodec::decode_cowen(r, g);
  } else {
    const Section* sec = find_section(h, kSecFlatFull);
    const std::string_view fb = section_bytes(bytes, h, kSecFlatFull);
    SpanReader r(fb, sec->offset);
    pkg->flat_full = ArtifactCodec::decode_full(r, g);
  }

  pkg->incr_stats.fallback_reason = "recovered from artifact";
  pkg->build_seconds =
      std::chrono::duration<double>(clock::now() - begin).count();
  if (meta_out != nullptr) *meta_out = h.meta;
  return pkg;
}

}  // namespace croute::persist

/// \file artifact_store.hpp
/// \brief Atomic publish / recover lifecycle for scheme artifacts.
///
/// The artifact codec (artifact.hpp) is pure bytes; this tier is the
/// filesystem protocol that makes those bytes crash-safe:
///
///  - **publish**: encode → write to `scheme-<gen>.art.tmp` in 1 MiB
///    chunks → fsync → rename onto `scheme-<gen>.art` → fsync the
///    directory → atomically rewrite MANIFEST (same tmp/fsync/rename
///    dance) to point at the new live artifact, demoting the previous
///    one to backup → unlink generations beyond the retention budget.
///    A crash at ANY point leaves either the old MANIFEST naming the old
///    (intact, fsynced) artifact, or the new MANIFEST naming the new one
///    — the classic write-ahead rename protocol; *.tmp litter is inert
///    and swept on the next publish.
///  - **recover**: try the MANIFEST's live artifact, then its backup,
///    then every `scheme-*.art` in the directory newest-first. Each
///    candidate is fully verified (header CRC, whole-file CRC, section
///    CRCs, fingerprints, options digest) before it may serve; every
///    rejection is *recorded, not thrown* — a corrupt store degrades to
///    a fresh preprocessing run with a reason string, never a crash.
///
/// Every write/fsync/rename goes through a FaultInjector
/// (CROUTE_PERSIST_FAULT), which is how the corruption matrix in
/// tests/test_persist.cpp and the CI kill/recover job prove the claims
/// above instead of asserting them. Publishes and recoveries emit
/// "persist"-category trace spans and croute_persist_* metrics when the
/// store is given the service's recorder/registry.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "persist/artifact.hpp"
#include "persist/fault_injection.hpp"

namespace croute::obs {
class MetricRegistry;
class Counter;
class LogHistogram;
class TraceRecorder;
}  // namespace croute::obs

namespace croute::persist {

struct StoreOptions {
  std::string dir;           ///< artifact directory (created if absent)
  std::uint32_t retain = 2;  ///< artifact generations kept on disk (>= 1)
};

/// Outcome of one publish. ok=false is *graceful*: the service keeps
/// serving from memory and records why the disk copy is stale.
struct PublishResult {
  bool ok = false;
  std::string path;               ///< published artifact (when ok)
  std::uint64_t generation = 0;   ///< store generation number assigned
  std::uint64_t bytes = 0;        ///< artifact size
  double encode_s = 0;            ///< serialize wall time
  double write_s = 0;             ///< write+fsync+rename wall time
  std::string error;              ///< why publish failed (when !ok)
};

/// Outcome of one recovery attempt. package == nullptr means every
/// candidate was rejected (or none existed) and the caller must build
/// fresh; `rejected` then says exactly why each one failed.
struct RecoverResult {
  SchemePackagePtr package;
  ArtifactMeta meta;                  ///< of the recovered artifact
  std::string path;                   ///< file that served (when recovered)
  double verify_s = 0;                ///< read + verify + decode wall time
  std::vector<std::string> rejected;  ///< "file: reason" per rejected candidate
  std::string note;                   ///< one-line human-readable outcome
};

/// The artifact directory lifecycle. Thread-safe: publishes serialize on
/// an internal mutex (the rebuild worker and the constructor may race).
class ArtifactStore {
 public:
  /// Creates the directory if needed and arms the fault injector from
  /// CROUTE_PERSIST_FAULT. \p metrics / \p trace may be nullptr (no
  /// observability); when given they must outlive the store.
  explicit ArtifactStore(StoreOptions options,
                         obs::MetricRegistry* metrics = nullptr,
                         obs::TraceRecorder* trace = nullptr);

  /// Encodes \p pkg and publishes it atomically as the next store
  /// generation (max existing + 1 — independent of the service's
  /// in-process generation counter, so restarts never collide). Never
  /// throws: failures (injected or real) come back in the result.
  PublishResult publish_generation(const SchemePackage& pkg);

  /// Recovers the newest valid artifact compatible with \p serving
  /// (options digest) and \p expected_n vertices. Never throws.
  RecoverResult recover_newest(const RouteServiceOptions& serving,
                               VertexId expected_n);

  /// Largest generation number on disk (0 when empty/unreadable).
  std::uint64_t newest_generation() const;

  const StoreOptions& options() const noexcept { return options_; }
  FaultInjector& fault_injector() noexcept { return injector_; }

 private:
  /// Writes \p bytes to \p path via tmp → fsync → rename → dir fsync,
  /// every operation through the injector. Throws std::runtime_error on
  /// failure (callers translate into results).
  void atomic_write(const std::string& path, std::string_view bytes);
  void write_manifest(const std::string& live, const std::string& backup);
  /// MANIFEST candidates (live, then backup), empty when absent/corrupt.
  std::vector<std::string> manifest_candidates() const;
  /// All scheme-*.art files, newest generation first.
  std::vector<std::string> scan_artifacts() const;
  void retire_old(const std::string& live, const std::string& backup);

  StoreOptions options_;
  FaultInjector injector_;
  std::mutex publish_mu_;
  std::uint64_t last_published_ = 0;

  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* written_ = nullptr;
  obs::Counter* recovered_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* publish_failures_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::LogHistogram* verify_us_ = nullptr;
};

}  // namespace croute::persist

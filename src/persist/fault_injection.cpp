#include "persist/fault_injection.hpp"

#include <cstdlib>
#include <stdexcept>

namespace croute::persist {

FaultPlan plan_from_env() {
  // Reading the environment is fine here: this function is called once
  // per store construction on the persistence control path, which is
  // never reachable from the deterministic preprocessing roots.
  const char* raw = std::getenv("CROUTE_PERSIST_FAULT");
  if (raw == nullptr || *raw == '\0') return {};
  const std::string spec(raw);
  const auto bad = [&](const char* why) -> FaultPlan {
    throw std::invalid_argument(std::string("CROUTE_PERSIST_FAULT: ") + why +
                                " (want <action>:<op>:<n>, e.g. "
                                "crash:write:3): " +
                                spec);
  };
  const std::size_t c1 = spec.find(':');
  const std::size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    return bad("missing ':'");
  }
  const std::string action = spec.substr(0, c1);
  const std::string op = spec.substr(c1 + 1, c2 - c1 - 1);
  const std::string count = spec.substr(c2 + 1);

  FaultPlan plan;
  if (action == "fail") {
    plan.action = FaultAction::kFail;
  } else if (action == "short") {
    plan.action = FaultAction::kShort;
  } else if (action == "enospc") {
    plan.action = FaultAction::kEnospc;
  } else if (action == "crash") {
    plan.action = FaultAction::kCrash;
  } else {
    return bad("unknown action");
  }
  if (op == "write") {
    plan.op = FaultOp::kWrite;
  } else if (op == "fsync") {
    plan.op = FaultOp::kFsync;
  } else if (op == "rename") {
    plan.op = FaultOp::kRename;
  } else {
    return bad("unknown op");
  }
  char* end = nullptr;
  plan.at = std::strtoull(count.c_str(), &end, 10);
  if (end == count.c_str() || *end != '\0' || plan.at == 0) {
    return bad("bad count");
  }
  return plan;
}

}  // namespace croute::persist

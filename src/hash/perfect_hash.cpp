#include "hash/perfect_hash.hpp"

#include <algorithm>
#include <stdexcept>

namespace croute {

PerfectHashMap PerfectHashMap::build(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
    Rng& rng, BuildStats* stats) {
  PerfectHashMap m;
  const std::uint64_t n = entries.size();
  m.size_ = n;
  if (stats) *stats = BuildStats{};
  if (n == 0) return m;

  {
    // Reject duplicate keys up front (they would loop level-2 forever).
    std::vector<std::uint64_t> keys;
    keys.reserve(n);
    for (const auto& [k, v] : entries) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      throw std::invalid_argument("PerfectHashMap: duplicate keys");
    }
  }

  const std::uint64_t buckets = n;
  std::vector<std::vector<std::uint32_t>> bucket_members(buckets);

  // Level 1: retry until the squared bucket sizes sum to <= 4n.
  constexpr int kMaxTopRetries = 64;
  for (int attempt = 0;; ++attempt) {
    CROUTE_ASSERT(attempt < kMaxTopRetries,
                  "FKS level-1 retries exhausted (bad randomness?)");
    if (stats && attempt > 0) ++stats->top_retries;
    m.top_ = PairwiseHash::draw(buckets, rng);
    for (auto& b : bucket_members) b.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      bucket_members[(*m.top_)(entries[i].first)].push_back(i);
    }
    std::uint64_t squares = 0;
    for (const auto& b : bucket_members) {
      squares += static_cast<std::uint64_t>(b.size()) * b.size();
    }
    if (squares <= 4 * n) break;
  }

  // Level 2: per-bucket injective hashes into b_i^2 slots.
  m.bucket_offset_.assign(buckets + 1, 0);
  m.bucket_a_.assign(buckets, 1);
  m.bucket_b_.assign(buckets, 0);
  for (std::uint64_t i = 0; i < buckets; ++i) {
    const std::uint64_t b = bucket_members[i].size();
    m.bucket_offset_[i + 1] = m.bucket_offset_[i] + b * b;
  }
  m.keys_.assign(m.bucket_offset_[buckets], kEmpty);
  m.values_.assign(m.bucket_offset_[buckets], 0);

  constexpr int kMaxBucketRetries = 1024;
  for (std::uint64_t i = 0; i < buckets; ++i) {
    const auto& members = bucket_members[i];
    if (members.empty()) continue;
    const std::uint64_t range =
        static_cast<std::uint64_t>(members.size()) * members.size();
    const std::uint64_t base = m.bucket_offset_[i];
    for (int attempt = 0;; ++attempt) {
      CROUTE_ASSERT(attempt < kMaxBucketRetries,
                    "FKS level-2 retries exhausted (duplicate keys?)");
      if (stats && attempt > 0) ++stats->bucket_retries;
      const PairwiseHash h = PairwiseHash::draw(range, rng);
      bool injective = true;
      for (const std::uint32_t idx : members) {
        const std::uint64_t slot = base + h(entries[idx].first);
        if (m.keys_[slot] != kEmpty) {
          injective = false;
          break;
        }
        m.keys_[slot] = entries[idx].first;
        m.values_[slot] = entries[idx].second;
      }
      if (injective) {
        m.bucket_a_[i] = h.a();
        m.bucket_b_[i] = h.b();
        break;
      }
      for (std::uint64_t s = base; s < m.bucket_offset_[i + 1]; ++s) {
        m.keys_[s] = kEmpty;
      }
    }
  }
  return m;
}

CROUTE_HOT std::optional<std::uint32_t> PerfectHashMap::find(
    std::uint64_t key) const noexcept {
  if (size_ == 0) return std::nullopt;
  const std::uint64_t i = (*top_)(key);
  const std::uint64_t base = bucket_offset_[i];
  const std::uint64_t width = bucket_offset_[i + 1] - base;
  if (width == 0) return std::nullopt;
  const std::uint64_t slot =
      base + PairwiseHash::eval(bucket_a_[i], bucket_b_[i], width, key);
  if (keys_[slot] != key) return std::nullopt;
  return values_[slot];
}

std::uint64_t PerfectHashMap::overhead_bits() const noexcept {
  if (size_ == 0) return 0;
  // Top-level params (a, b) + per-bucket params and offsets + slot arrays.
  return 2 * 64 + bucket_offset_.size() * 64 +
         (bucket_a_.size() + bucket_b_.size()) * 64 + keys_.size() * 64 +
         values_.size() * 32;
}

}  // namespace croute

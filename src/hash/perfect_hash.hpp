/// \file perfect_hash.hpp
/// \brief FKS two-level static perfect hashing: O(1) worst-case lookups.
///
/// Thorup–Zwick store routing tables "using 2-level hash tables" so that a
/// routing decision costs O(1) worst case. This is the classic
/// Fredman–Komlós–Szemerédi construction:
///
///  level 1: a pairwise-independent hash splits the n keys into n buckets;
///           redrawn until Σ b_i² ≤ 4n (expected O(1) retries);
///  level 2: bucket i of size b_i gets a table of b_i² slots and its own
///           pairwise hash, redrawn until injective (expected O(1) retries).
///
/// Space: O(n) words. Lookup: two hash evaluations + one probe.
///
/// Keys are arbitrary uint64 (callers key by vertex id); values are uint32
/// payload indices into caller-owned storage.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/pairwise.hpp"
#include "util/random.hpp"

namespace croute {

/// Immutable perfect-hash map uint64 → uint32 (build once, query forever).
class PerfectHashMap {
 public:
  /// Builds from distinct keys. Throws std::invalid_argument on duplicate
  /// keys. Expected O(n) time.
  static PerfectHashMap build(
      const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
      Rng& rng);

  /// Value for \p key, or std::nullopt. O(1) worst case.
  std::optional<std::uint32_t> find(std::uint64_t key) const noexcept;

  bool contains(std::uint64_t key) const noexcept {
    return find(key).has_value();
  }

  std::uint64_t size() const noexcept { return size_; }

  /// Total slots across second-level tables (Σ b_i²) — the space bound the
  /// FKS analysis controls; ≤ 4·size() by construction.
  std::uint64_t slot_count() const noexcept { return keys_.size(); }

  /// Structural overhead in bits (hash parameters + offsets + empty slots),
  /// excluding the caller's payloads. Used by the table-size accounting.
  std::uint64_t overhead_bits() const noexcept;

 private:
  PerfectHashMap() = default;

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::uint64_t size_ = 0;
  std::optional<PairwiseHash> top_;
  std::vector<std::uint64_t> bucket_offset_;  ///< size buckets+1, into keys_
  std::vector<std::uint64_t> bucket_a_, bucket_b_;  ///< per-bucket hash params
  std::vector<std::uint64_t> keys_;   ///< kEmpty marks free slots
  std::vector<std::uint32_t> values_;
};

}  // namespace croute

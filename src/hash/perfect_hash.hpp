/// \file perfect_hash.hpp
/// \brief FKS two-level static perfect hashing: O(1) worst-case lookups.
///
/// Thorup–Zwick store routing tables "using 2-level hash tables" so that a
/// routing decision costs O(1) worst case. This is the classic
/// Fredman–Komlós–Szemerédi construction:
///
///  level 1: a pairwise-independent hash splits the n keys into n buckets;
///           redrawn until Σ b_i² ≤ 4n (expected O(1) retries);
///  level 2: bucket i of size b_i gets a table of b_i² slots and its own
///           pairwise hash, redrawn until injective (expected O(1) retries).
///
/// Space: O(n) words. Lookup: two hash evaluations + one probe.
///
/// Keys are arbitrary uint64 (callers key by vertex id); values are uint32
/// payload indices into caller-owned storage.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/pairwise.hpp"
#include "util/annotations.hpp"
#include "util/prefetch.hpp"
#include "util/random.hpp"

namespace croute {

/// Immutable perfect-hash map uint64 → uint32 (build once, query forever).
class PerfectHashMap {
 public:
  /// Construction-time retry counters: how many level-1 redraws the Σb²
  /// bound cost and how many level-2 redraws injectivity cost. Expected
  /// O(1) each; surfaced so scheme-compile telemetry can attribute
  /// rebuild time to hash seeding luck.
  struct BuildStats {
    std::uint64_t top_retries = 0;
    std::uint64_t bucket_retries = 0;
  };

  /// Builds from distinct keys. Throws std::invalid_argument on duplicate
  /// keys. Expected O(n) time. \p stats, when non-null, receives the
  /// retry counters.
  static PerfectHashMap build(
      const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
      Rng& rng, BuildStats* stats = nullptr);

  /// Value for \p key, or std::nullopt. O(1) worst case.
  CROUTE_HOT std::optional<std::uint32_t> find(
      std::uint64_t key) const noexcept;

  /// --- staged probe (the software-pipelined batch engine) ---------------
  /// A find is two dependent loads: bucket parameters, then the slot. The
  /// staged API lets a caller interleave G probes so each load is
  /// prefetched while other probes compute:
  ///   prefetch_bucket(key);                    // round 0
  ///   slot = locate_slot(key); prefetch_slot;  // round 1 (params cached)
  ///   value_at(slot, key);                     // round 2 (slot cached)
  /// value_at(locate_slot(key), key) == find(key) for every key.

  /// "no slot" sentinel of locate_slot (empty map or empty bucket).
  static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

  CROUTE_HOT void prefetch_bucket(std::uint64_t key) const noexcept {
    if (size_ == 0) return;
    const std::uint64_t i = (*top_)(key);
    CROUTE_PREFETCH(&bucket_offset_[i]);
    CROUTE_PREFETCH(&bucket_a_[i]);
    CROUTE_PREFETCH(&bucket_b_[i]);
  }

  CROUTE_HOT std::uint64_t locate_slot(std::uint64_t key) const noexcept {
    if (size_ == 0) return kNoSlot;
    const std::uint64_t i = (*top_)(key);
    const std::uint64_t base = bucket_offset_[i];
    const std::uint64_t width = bucket_offset_[i + 1] - base;
    if (width == 0) return kNoSlot;
    return base + PairwiseHash::eval(bucket_a_[i], bucket_b_[i], width, key);
  }

  CROUTE_HOT void prefetch_slot(std::uint64_t slot) const noexcept {
    if (slot == kNoSlot) return;
    CROUTE_PREFETCH(&keys_[slot]);
    CROUTE_PREFETCH(&values_[slot]);
  }

  CROUTE_HOT std::optional<std::uint32_t> value_at(
      std::uint64_t slot, std::uint64_t key) const noexcept {
    if (slot == kNoSlot || keys_[slot] != key) return std::nullopt;
    return values_[slot];
  }

  /// --- raw slot arrays (batched SIMD slot check) -------------------------
  /// The level-2 slot key / value arrays, indexed by locate_slot results.
  /// Free slots hold the kEmpty key (~0), which never equals a packed
  /// (vertex, key) pair, so a batched compare needs no emptiness test —
  /// simd::Ops::fks_value_batch gathers slot_keys()[slot], compares, and
  /// blends slot_values()[slot] exactly as value_at does per lane.
  CROUTE_HOT const std::uint64_t* slot_keys() const noexcept {
    return keys_.data();
  }
  CROUTE_HOT const std::uint32_t* slot_values() const noexcept {
    return values_.data();
  }

  bool contains(std::uint64_t key) const noexcept {
    return find(key).has_value();
  }

  std::uint64_t size() const noexcept { return size_; }

  /// Total slots across second-level tables (Σ b_i²) — the space bound the
  /// FKS analysis controls; ≤ 4·size() by construction.
  std::uint64_t slot_count() const noexcept { return keys_.size(); }

  /// Structural overhead in bits (hash parameters + offsets + empty slots),
  /// excluding the caller's payloads. Used by the table-size accounting.
  std::uint64_t overhead_bits() const noexcept;

 private:
  PerfectHashMap() = default;

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::uint64_t size_ = 0;
  std::optional<PairwiseHash> top_;
  std::vector<std::uint64_t> bucket_offset_;  ///< size buckets+1, into keys_
  std::vector<std::uint64_t> bucket_a_, bucket_b_;  ///< per-bucket hash params
  std::vector<std::uint64_t> keys_;   ///< kEmpty marks free slots
  std::vector<std::uint32_t> values_;
};

}  // namespace croute

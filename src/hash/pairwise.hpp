/// \file pairwise.hpp
/// \brief Pairwise-independent hash family over a Mersenne-prime field.
///
/// h_{a,b}(x) = ((a·x + b) mod p) mod m with p = 2^61 − 1. For a, b drawn
/// uniformly (a ≠ 0), (h(x), h(y)) is uniform over pairs for x ≠ y — the
/// property FKS perfect hashing needs for its expected-constant build and
/// that Thorup–Zwick invoke for their O(1)-decision routing tables.

#pragma once

#include <cstdint>

#include "util/annotations.hpp"
#include "util/random.hpp"

namespace croute {

/// One member of the pairwise-independent family, mapping uint64 → [0, m).
class PairwiseHash {
 public:
  static constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;

  /// Draws a uniformly random member with range size \p range (>= 1).
  static PairwiseHash draw(std::uint64_t range, Rng& rng);

  /// Deterministic member from explicit parameters (range >= 1, 0 < a < p,
  /// b < p). Used when reproducing a published seed.
  PairwiseHash(std::uint64_t a, std::uint64_t b, std::uint64_t range);

  CROUTE_HOT std::uint64_t operator()(std::uint64_t x) const noexcept {
    return eval(a_, b_, range_, x);
  }

  /// Stateless evaluation — lets containers store raw (a, b) parameters.
  CROUTE_HOT static std::uint64_t eval(std::uint64_t a, std::uint64_t b,
                                       std::uint64_t range,
                                       std::uint64_t x) noexcept {
    return mod_p(mul_mod_p(a, mod_p(x)) + b) % range;
  }

  std::uint64_t range() const noexcept { return range_; }
  std::uint64_t a() const noexcept { return a_; }
  std::uint64_t b() const noexcept { return b_; }

 private:
  /// x mod (2^61 − 1) without division, valid for x < 2^62 + p.
  CROUTE_HOT static std::uint64_t mod_p(std::uint64_t x) noexcept {
    std::uint64_t r = (x & kPrime) + (x >> 61);
    if (r >= kPrime) r -= kPrime;
    return r;
  }
  // 128-bit multiply; __extension__ silences -Wpedantic for __int128,
  // which GCC and Clang both provide on all 64-bit targets we support.
  __extension__ typedef unsigned __int128 uint128;

  CROUTE_HOT static std::uint64_t mul_mod_p(std::uint64_t x,
                                            std::uint64_t y) noexcept {
    const uint128 z = static_cast<uint128>(x) * static_cast<uint128>(y);
    const std::uint64_t lo = static_cast<std::uint64_t>(z) & kPrime;
    const std::uint64_t hi = static_cast<std::uint64_t>(z >> 61);
    std::uint64_t r = lo + hi;  // <= 2p: up to two subtractions needed
    if (r >= kPrime) r -= kPrime;
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  std::uint64_t a_;
  std::uint64_t b_;
  std::uint64_t range_;
};

}  // namespace croute

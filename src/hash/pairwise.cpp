#include "hash/pairwise.hpp"

namespace croute {

PairwiseHash PairwiseHash::draw(std::uint64_t range, Rng& rng) {
  CROUTE_REQUIRE(range >= 1, "hash range must be at least 1");
  const std::uint64_t a = 1 + rng.next_below(kPrime - 1);  // a in [1, p)
  const std::uint64_t b = rng.next_below(kPrime);          // b in [0, p)
  return PairwiseHash(a, b, range);
}

PairwiseHash::PairwiseHash(std::uint64_t a, std::uint64_t b,
                           std::uint64_t range)
    : a_(a), b_(b), range_(range) {
  CROUTE_REQUIRE(range >= 1, "hash range must be at least 1");
  CROUTE_REQUIRE(a >= 1 && a < kPrime, "a must be in [1, p)");
  CROUTE_REQUIRE(b < kPrime, "b must be in [0, p)");
}

}  // namespace croute

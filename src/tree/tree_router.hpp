/// \file tree_router.hpp
/// \brief Thorup–Zwick tree routing, fixed-port model (§2 of SPAA'01).
///
/// Each node keeps an O(1)-word record; each destination gets a label of
/// O(log²n / log log n) bits in the worst case (DFS index plus the ports of
/// the ≤ floor(log2 n) light edges on its root path). Given the record of
/// the current node and the label of the destination, the next port is
/// computed in O(1):
///
///   at node v with record R, destination label L:
///     1. L.dfs == R.dfs_in            → deliver;
///     2. L.dfs outside [R.dfs_in+1, R.dfs_out) → v is not a proper
///        ancestor of t → go to the parent (R.parent_port);
///     3. L.dfs in R's heavy child interval → R.heavy_port;
///     4. otherwise the next edge toward t is light, and because v has
///        R.light_depth light edges above it, the wanted port is entry
///        R.light_depth of L's light-port sequence.
///
/// Correctness rests on heavy-first DFS numbering (heavy_path.hpp) and on
/// the light-depth counting argument in the file comment there.
///
/// Routing is *stateless*: intermediate nodes never modify the header.
/// This is the scheme embedded into the Thorup–Zwick graph schemes, which
/// store one NodeRecord per (vertex, cluster-tree) pair in their routing
/// tables and one Label per (destination, pivot-tree) pair in their
/// address labels.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/spt.hpp"
#include "tree/heavy_path.hpp"
#include "util/bit_io.hpp"

namespace croute {

/// Routing verdict at one node.
struct TreeDecision {
  bool deliver = false;
  Port port = kNoPort;  ///< valid when !deliver
};

/// The O(1)-word information a vertex stores for one tree.
struct TreeNodeRecord {
  std::uint32_t dfs_in = 0;
  std::uint32_t dfs_out = 0;     ///< subtree interval [dfs_in, dfs_out)
  std::uint32_t heavy_in = 0;
  std::uint32_t heavy_out = 0;   ///< heavy child's interval (empty for leaves)
  Port heavy_port = kNoPort;     ///< graph port toward the heavy child
  Port parent_port = kNoPort;    ///< graph port toward the parent (root: unset)
  std::uint32_t light_depth = 0; ///< light edges on the root path
};

/// The destination-side label for one tree.
struct TreeLabel {
  std::uint32_t dfs_in = 0;
  /// Graph port taken at the i-th light branch point of the root → t path.
  std::vector<Port> light_ports;

  bool operator==(const TreeLabel&) const = default;
};

/// Tree routing scheme over a LocalTree (cluster SPT); local index space.
class TreeRoutingScheme {
 public:
  /// Builds records and labels for every node of \p tree.
  explicit TreeRoutingScheme(const LocalTree& tree);

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(records_.size());
  }

  const TreeNodeRecord& record(std::uint32_t local) const {
    return records_[local];
  }
  const TreeLabel& label(std::uint32_t local) const { return labels_[local]; }

  /// O(1) routing decision (static: needs only the two arguments).
  static TreeDecision decide(const TreeNodeRecord& here, const TreeLabel& dest);

  /// --- bit-exact serialization -------------------------------------------
  /// Sizing context: the number of tree nodes (bounds dfs fields) and the
  /// maximum graph degree (bounds port fields).
  struct Codec {
    std::uint32_t dfs_bits = 1;   ///< bits per DFS index
    std::uint32_t port_bits = 1;  ///< bits per port number
    Codec() = default;  ///< placeholder; overwritten by deserialization
    Codec(std::uint32_t tree_size, Port max_degree)
        : dfs_bits(bits_for_universe(std::uint64_t{tree_size} + 1)),
          port_bits(bits_for_universe(std::uint64_t{max_degree} + 1)) {}
  };

  static void encode_label(const TreeLabel& l, const Codec& c, BitWriter& w);
  static TreeLabel decode_label(const Codec& c, BitReader& r);
  static std::uint64_t label_bits(const TreeLabel& l, const Codec& c);
  /// Same accounting from the light-port count alone (no materialized
  /// label) — the tables' finalize pass sizes pooled labels with this.
  static std::uint64_t label_bits(std::uint64_t light_port_count,
                                  const Codec& c);

  static void encode_record(const TreeNodeRecord& rec, const Codec& c,
                            BitWriter& w);
  static TreeNodeRecord decode_record(const Codec& c, BitReader& r);
  static std::uint64_t record_bits(const TreeNodeRecord& rec, const Codec& c);

 private:
  std::vector<TreeNodeRecord> records_;
  std::vector<TreeLabel> labels_;
};

}  // namespace croute

#include "tree/tree.hpp"

#include <algorithm>

namespace croute {

Tree::Tree(std::vector<std::uint32_t> parent) : parent_(std::move(parent)) {
  const std::uint32_t n = size();
  CROUTE_REQUIRE(n >= 1, "a tree needs at least one node");

  // Locate the root and count children.
  std::vector<std::uint32_t> child_count(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent_[v] == kNoLocal) {
      CROUTE_REQUIRE(root_ == kNoLocal, "multiple roots in parent array");
      root_ = v;
    } else {
      CROUTE_REQUIRE(parent_[v] < n, "parent index out of range");
      CROUTE_REQUIRE(parent_[v] != v, "self-parent");
      ++child_count[parent_[v]];
    }
  }
  CROUTE_REQUIRE(root_ != kNoLocal, "no root in parent array");

  child_offset_.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    child_offset_[v + 1] = child_offset_[v] + child_count[v];
  }
  children_.assign(child_offset_[n], 0);
  {
    std::vector<std::size_t> cursor(child_offset_.begin(),
                                    child_offset_.end() - 1);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (parent_[v] != kNoLocal) children_[cursor[parent_[v]]++] = v;
    }
    // Ascending ids per parent: the fill above already emits ascending v.
  }

  // Iterative preorder; also computes depth and detects cycles (a node
  // reachable from the root count must equal n).
  depth_.assign(n, 0);
  preorder_.clear();
  preorder_.reserve(n);
  std::vector<std::uint32_t> stack{root_};
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    preorder_.push_back(v);
    const auto kids = children(v);
    // Push in reverse so that children pop in ascending order.
    for (std::size_t i = kids.size(); i > 0; --i) {
      const std::uint32_t c = kids[i - 1];
      depth_[c] = depth_[v] + 1;
      height_ = std::max(height_, depth_[c]);
      stack.push_back(c);
    }
  }
  CROUTE_REQUIRE(preorder_.size() == n,
                 "parent array contains a cycle or unreachable nodes");

  // Subtree sizes: reverse preorder is a valid post-order for accumulation.
  size_.assign(n, 1);
  for (std::size_t i = preorder_.size(); i > 0; --i) {
    const std::uint32_t v = preorder_[i - 1];
    if (parent_[v] != kNoLocal) size_[parent_[v]] += size_[v];
  }
}

}  // namespace croute

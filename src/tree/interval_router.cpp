#include "tree/interval_router.hpp"

#include <algorithm>

#include "util/bit_io.hpp"

namespace croute {

IntervalTreeScheme::IntervalTreeScheme(const LocalTree& local) {
  const Tree tree = Tree::from_local_tree(local);
  const HeavyPathDecomposition hpd(tree);
  n_ = tree.size();
  label_bits_ = bits_for_universe(n_);
  dfs_in_.resize(n_);
  dfs_out_.resize(n_);
  order_.resize(n_);
  for (std::uint32_t v = 0; v < n_; ++v) {
    dfs_in_[v] = hpd.dfs_in(v);
    dfs_out_[v] = hpd.dfs_out(v);
    order_[dfs_in_[v]] = v;
  }

  start_offset_.assign(n_ + 1, 0);
  port_offset_.assign(n_ + 1, 0);
  for (std::uint32_t v = 0; v < n_; ++v) {
    const std::uint32_t kids =
        static_cast<std::uint32_t>(hpd.visit_order(v).size());
    start_offset_[v + 1] = start_offset_[v] + kids;
    // Designer ports: 0 = parent (non-root only), then one per child.
    port_offset_[v + 1] = port_offset_[v] + kids + 1;
  }
  starts_.assign(start_offset_[n_], 0);
  graph_port_.assign(port_offset_[n_], kNoPort);
  for (std::uint32_t v = 0; v < n_; ++v) {
    const auto& kids = hpd.visit_order(v);
    // Port 0: parent (kNoPort at the root — never used by decide()).
    graph_port_[port_offset_[v]] = local.parent_port[v];
    for (std::uint32_t i = 0; i < kids.size(); ++i) {
      starts_[start_offset_[v] + i] = hpd.dfs_in(kids[i]);
      graph_port_[port_offset_[v] + 1 + i] = local.down_port[kids[i]];
    }
    // Heavy-first DFS makes children's intervals consecutive and ascending.
    CROUTE_DCHECK(
        std::is_sorted(starts_.begin() +
                           static_cast<std::ptrdiff_t>(start_offset_[v]),
                       starts_.begin() +
                           static_cast<std::ptrdiff_t>(start_offset_[v + 1])),
        "child intervals must ascend in visit order");
  }
}

IntervalTreeScheme::Decision IntervalTreeScheme::decide(
    std::uint32_t local, std::uint32_t dest) const {
  CROUTE_REQUIRE(local < n_ && dest < n_, "node or label out of range");
  if (dest == dfs_in_[local]) return Decision{true, 0};
  if (dest < dfs_in_[local] || dest >= dfs_out_[local]) {
    return Decision{false, 0};  // up to the parent
  }
  // Find the last child start <= dest.
  const auto starts = child_starts(local);
  const auto it = std::upper_bound(starts.begin(), starts.end(), dest);
  CROUTE_ASSERT(it != starts.begin(), "descendant below no child");
  const std::uint32_t child_index =
      static_cast<std::uint32_t>(it - starts.begin() - 1);
  return Decision{false, child_index + 1};
}

Port IntervalTreeScheme::to_graph_port(std::uint32_t local,
                                       std::uint32_t designer_port) const {
  CROUTE_REQUIRE(local < n_, "node out of range");
  const std::size_t width = port_offset_[local + 1] - port_offset_[local];
  CROUTE_REQUIRE(designer_port < width, "designer port out of range");
  const Port p = graph_port_[port_offset_[local] + designer_port];
  CROUTE_ASSERT(p != kNoPort, "designer port 0 used at the root");
  return p;
}

}  // namespace croute

#include "tree/tree_router.hpp"

namespace croute {

TreeRoutingScheme::TreeRoutingScheme(const LocalTree& local) {
  const Tree tree = Tree::from_local_tree(local);
  const HeavyPathDecomposition hpd(tree);
  const std::uint32_t n = tree.size();
  records_.resize(n);
  labels_.resize(n);

  for (std::uint32_t v = 0; v < n; ++v) {
    TreeNodeRecord& r = records_[v];
    r.dfs_in = hpd.dfs_in(v);
    r.dfs_out = hpd.dfs_out(v);
    r.parent_port = local.parent_port[v];  // kNoPort at the root
    r.light_depth = hpd.light_depth(v);
    const std::uint32_t h = hpd.heavy_child(v);
    if (h != kNoLocal) {
      r.heavy_in = hpd.dfs_in(h);
      r.heavy_out = hpd.dfs_out(h);
      r.heavy_port = local.down_port[h];
    } else {
      r.heavy_in = r.heavy_out = 0;  // empty interval
      r.heavy_port = kNoPort;
    }
  }

  // Labels along the heavy-first preorder: maintain the stack of light
  // ports taken on the root path.
  std::vector<Port> light_stack;
  // Iterative DFS mirroring HeavyPathDecomposition's visit order.
  struct Frame {
    std::uint32_t node;
    std::uint32_t next_child;
  };
  std::vector<Frame> stack;
  const std::uint32_t root = tree.root();
  labels_[root] = TreeLabel{hpd.dfs_in(root), {}};
  stack.push_back(Frame{root, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = hpd.visit_order(f.node);
    if (f.next_child < kids.size()) {
      const std::uint32_t c = kids[f.next_child++];
      if (hpd.is_light(c)) light_stack.push_back(local.down_port[c]);
      labels_[c].dfs_in = hpd.dfs_in(c);
      labels_[c].light_ports = light_stack;
      stack.push_back(Frame{c, 0});
    } else {
      const std::uint32_t v = f.node;
      stack.pop_back();
      if (v != root && hpd.is_light(v)) light_stack.pop_back();
    }
  }
}

TreeDecision TreeRoutingScheme::decide(const TreeNodeRecord& here,
                                       const TreeLabel& dest) {
  if (dest.dfs_in == here.dfs_in) return TreeDecision{true, kNoPort};
  if (dest.dfs_in < here.dfs_in || dest.dfs_in >= here.dfs_out) {
    CROUTE_ASSERT(here.parent_port != kNoPort,
                  "destination outside the tree reached the root");
    return TreeDecision{false, here.parent_port};
  }
  if (dest.dfs_in >= here.heavy_in && dest.dfs_in < here.heavy_out &&
      here.heavy_port != kNoPort) {
    return TreeDecision{false, here.heavy_port};
  }
  CROUTE_ASSERT(here.light_depth < dest.light_ports.size(),
                "label misses the light port for this branch point");
  return TreeDecision{false, dest.light_ports[here.light_depth]};
}

void TreeRoutingScheme::encode_label(const TreeLabel& l, const Codec& c,
                                     BitWriter& w) {
  w.write_bits(l.dfs_in, c.dfs_bits);
  w.write_gamma(l.light_ports.size() + 1);
  for (const Port p : l.light_ports) w.write_bits(p, c.port_bits);
}

TreeLabel TreeRoutingScheme::decode_label(const Codec& c, BitReader& r) {
  TreeLabel l;
  l.dfs_in = static_cast<std::uint32_t>(r.read_bits(c.dfs_bits));
  const std::uint64_t count = r.read_gamma() - 1;
  l.light_ports.resize(count);
  for (auto& p : l.light_ports) {
    p = static_cast<Port>(r.read_bits(c.port_bits));
  }
  return l;
}

std::uint64_t TreeRoutingScheme::label_bits(std::uint64_t light_port_count,
                                            const Codec& c) {
  return c.dfs_bits + gamma_bits(light_port_count + 1) +
         light_port_count * c.port_bits;
}

std::uint64_t TreeRoutingScheme::label_bits(const TreeLabel& l,
                                            const Codec& c) {
  return label_bits(l.light_ports.size(), c);
}

void TreeRoutingScheme::encode_record(const TreeNodeRecord& rec,
                                      const Codec& c, BitWriter& w) {
  w.write_bits(rec.dfs_in, c.dfs_bits);
  w.write_bits(rec.dfs_out, c.dfs_bits);
  w.write_bits(rec.heavy_in, c.dfs_bits);
  w.write_bits(rec.heavy_out, c.dfs_bits);
  // Ports may be kNoPort (root / leaf): shift by one so 0 means "none".
  w.write_gamma(rec.heavy_port == kNoPort ? 1 : std::uint64_t{rec.heavy_port} + 2);
  w.write_gamma(rec.parent_port == kNoPort ? 1
                                           : std::uint64_t{rec.parent_port} + 2);
  w.write_gamma(std::uint64_t{rec.light_depth} + 1);
}

TreeNodeRecord TreeRoutingScheme::decode_record(const Codec& c, BitReader& r) {
  TreeNodeRecord rec;
  rec.dfs_in = static_cast<std::uint32_t>(r.read_bits(c.dfs_bits));
  rec.dfs_out = static_cast<std::uint32_t>(r.read_bits(c.dfs_bits));
  rec.heavy_in = static_cast<std::uint32_t>(r.read_bits(c.dfs_bits));
  rec.heavy_out = static_cast<std::uint32_t>(r.read_bits(c.dfs_bits));
  const std::uint64_t hp = r.read_gamma();
  rec.heavy_port = hp == 1 ? kNoPort : static_cast<Port>(hp - 2);
  const std::uint64_t pp = r.read_gamma();
  rec.parent_port = pp == 1 ? kNoPort : static_cast<Port>(pp - 2);
  rec.light_depth = static_cast<std::uint32_t>(r.read_gamma() - 1);
  return rec;
}

std::uint64_t TreeRoutingScheme::record_bits(const TreeNodeRecord& rec,
                                             const Codec& c) {
  return 4 * std::uint64_t{c.dfs_bits} +
         gamma_bits(rec.heavy_port == kNoPort
                        ? 1
                        : std::uint64_t{rec.heavy_port} + 2) +
         gamma_bits(rec.parent_port == kNoPort
                        ? 1
                        : std::uint64_t{rec.parent_port} + 2) +
         gamma_bits(std::uint64_t{rec.light_depth} + 1);
}

}  // namespace croute

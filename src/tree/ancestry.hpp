/// \file ancestry.hpp
/// \brief O(log n)-bit ancestry labels for trees (DFS intervals).
///
/// The classic Kannan–Naor–Rudich scheme: label(v) = [dfs_in(v), dfs_out(v));
/// u is an ancestor of v iff u's interval contains v's. Used directly by
/// tests and as the skeleton of the tree-routing labels.

#pragma once

#include <cstdint>

#include "tree/heavy_path.hpp"
#include "util/bit_io.hpp"

namespace croute {

/// Interval ancestry label of one node.
struct AncestryLabel {
  std::uint32_t in = 0;
  std::uint32_t out = 0;  ///< exclusive

  /// True if *this labels an ancestor of (or equals) \p other.
  bool is_ancestor_of(const AncestryLabel& other) const noexcept {
    return in <= other.in && other.out <= out;
  }
  bool operator==(const AncestryLabel&) const = default;
};

/// Assigns ancestry labels to all nodes of a tree.
class AncestryLabeling {
 public:
  explicit AncestryLabeling(const Tree& tree);

  AncestryLabel label(std::uint32_t v) const { return labels_[v]; }
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(labels_.size());
  }

  /// Exact encoded size of one label in bits: 2 * ceil(log2 n).
  std::uint32_t label_bits() const noexcept { return 2 * field_bits_; }

  void encode(const AncestryLabel& l, BitWriter& w) const;
  AncestryLabel decode(BitReader& r) const;

 private:
  std::vector<AncestryLabel> labels_;
  std::uint32_t field_bits_;
};

}  // namespace croute

#include "tree/heavy_path.hpp"

#include <algorithm>

namespace croute {

HeavyPathDecomposition::HeavyPathDecomposition(const Tree& tree) {
  const std::uint32_t n = tree.size();
  heavy_child_.assign(n, kNoLocal);
  light_.assign(n, 0);
  light_depth_.assign(n, 0);
  head_.assign(n, kNoLocal);
  dfs_in_.assign(n, 0);
  dfs_out_.assign(n, 0);
  order_.assign(n, 0);
  visit_children_.assign(n, {});

  // Heavy children and per-node visit orders.
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto kids = tree.children(v);
    if (kids.empty()) continue;
    std::vector<std::uint32_t> order(kids.begin(), kids.end());
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::uint32_t sa = tree.subtree_size(a);
                const std::uint32_t sb = tree.subtree_size(b);
                if (sa != sb) return sa > sb;
                return a < b;
              });
    heavy_child_[v] = order.front();
    visit_children_[v] = std::move(order);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (tree.is_root(v)) continue;
    light_[v] = heavy_child_[tree.parent(v)] != v;
  }

  // Heavy-first DFS (iterative): assigns dfs numbers, light depth, heads.
  std::uint32_t counter = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // (node, child idx)
  const std::uint32_t root = tree.root();
  head_[root] = root;
  stack.emplace_back(root, 0);
  dfs_in_[root] = counter;
  order_[counter++] = root;
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    const auto& kids = visit_children_[v];
    if (idx < kids.size()) {
      const std::uint32_t c = kids[idx++];
      light_depth_[c] = light_depth_[v] + (light_[c] ? 1 : 0);
      max_light_depth_ = std::max(max_light_depth_, light_depth_[c]);
      head_[c] = light_[c] ? c : head_[v];
      dfs_in_[c] = counter;
      order_[counter++] = c;
      stack.emplace_back(c, 0);
    } else {
      dfs_out_[v] = counter;
      stack.pop_back();
    }
  }
  CROUTE_ASSERT(counter == n, "DFS did not visit every node");
}

}  // namespace croute

#include "tree/ancestry.hpp"

namespace croute {

AncestryLabeling::AncestryLabeling(const Tree& tree)
    : field_bits_(bits_for_universe(tree.size() + 1)) {
  const HeavyPathDecomposition hpd(tree);
  labels_.resize(tree.size());
  for (std::uint32_t v = 0; v < tree.size(); ++v) {
    labels_[v] = AncestryLabel{hpd.dfs_in(v), hpd.dfs_out(v)};
  }
}

void AncestryLabeling::encode(const AncestryLabel& l, BitWriter& w) const {
  w.write_bits(l.in, field_bits_);
  w.write_bits(l.out, field_bits_);
}

AncestryLabel AncestryLabeling::decode(BitReader& r) const {
  AncestryLabel l;
  l.in = static_cast<std::uint32_t>(r.read_bits(field_bits_));
  l.out = static_cast<std::uint32_t>(r.read_bits(field_bits_));
  return l;
}

}  // namespace croute

/// \file heavy_path.hpp
/// \brief Heavy-path (heavy-light) decomposition and heavy-first DFS order.
///
/// Following Thorup–Zwick §2: the *heavy child* of a non-leaf v is its
/// child with the largest subtree (ties broken toward the smallest local
/// id). An edge to a non-heavy child is *light*; descending a light edge
/// at least halves the subtree size, so every root-leaf path contains at
/// most floor(log2 n) light edges. The tree-routing schemes rest on two
/// artifacts computed here:
///  - a DFS numbering in which each node's heavy child is visited first
///    and remaining children are visited in decreasing subtree size, and
///  - the light depth of each node (number of light edges on its root path).

#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace croute {

/// Heavy-path decomposition of a Tree.
class HeavyPathDecomposition {
 public:
  explicit HeavyPathDecomposition(const Tree& tree);

  /// Heavy child of v, or kNoLocal for leaves.
  std::uint32_t heavy_child(std::uint32_t v) const { return heavy_child_[v]; }

  /// True if the edge (parent(v) → v) is light; the root edge counts as
  /// heavy by convention (root has no parent edge).
  bool is_light(std::uint32_t v) const { return light_[v]; }

  /// Number of light edges on the root → v path. At most floor(log2 n).
  std::uint32_t light_depth(std::uint32_t v) const { return light_depth_[v]; }

  /// Topmost node of v's heavy path.
  std::uint32_t head(std::uint32_t v) const { return head_[v]; }

  /// Heavy-first DFS numbers: dfs_in(v) is v's preorder index, the
  /// subtree of v occupies [dfs_in(v), dfs_out(v)).
  std::uint32_t dfs_in(std::uint32_t v) const { return dfs_in_[v]; }
  std::uint32_t dfs_out(std::uint32_t v) const { return dfs_out_[v]; }

  /// Inverse of dfs_in: node with preorder index i.
  std::uint32_t node_at(std::uint32_t dfs_index) const {
    return order_[dfs_index];
  }

  /// Children of v in visit order (heavy first, then decreasing size).
  const std::vector<std::uint32_t>& visit_order(std::uint32_t v) const {
    return visit_children_[v];
  }

  /// Max light depth over all nodes (the scheme's label-length driver).
  std::uint32_t max_light_depth() const noexcept { return max_light_depth_; }

 private:
  std::vector<std::uint32_t> heavy_child_;
  std::vector<std::uint8_t> light_;
  std::vector<std::uint32_t> light_depth_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> dfs_in_;
  std::vector<std::uint32_t> dfs_out_;
  std::vector<std::uint32_t> order_;
  std::vector<std::vector<std::uint32_t>> visit_children_;
  std::uint32_t max_light_depth_ = 0;
};

}  // namespace croute

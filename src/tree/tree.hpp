/// \file tree.hpp
/// \brief Rooted tree over local indices: children CSR, depth, subtree size.
///
/// All traversals are iterative — cluster trees can be paths of 10^5+
/// vertices and recursion would overflow the stack.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/spt.hpp"

namespace croute {

/// Rooted tree given by a parent array over local ids [0, n).
/// Exactly one node (the root) has parent == kNoLocal.
class Tree {
 public:
  /// Builds from a parent array; children of each node are ordered by
  /// ascending local id. Validates single-rootedness and acyclicity.
  explicit Tree(std::vector<std::uint32_t> parent);

  /// Convenience: tree structure of a LocalTree (ports/globals ignored).
  static Tree from_local_tree(const LocalTree& t) { return Tree(t.parent); }

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }
  std::uint32_t root() const noexcept { return root_; }

  std::uint32_t parent(std::uint32_t v) const { return parent_[v]; }
  bool is_root(std::uint32_t v) const { return parent_[v] == kNoLocal; }

  std::span<const std::uint32_t> children(std::uint32_t v) const {
    return {children_.data() + child_offset_[v],
            child_offset_[v + 1] - child_offset_[v]};
  }
  std::uint32_t num_children(std::uint32_t v) const {
    return static_cast<std::uint32_t>(child_offset_[v + 1] - child_offset_[v]);
  }
  bool is_leaf(std::uint32_t v) const { return num_children(v) == 0; }

  /// Edge-count depth: depth(root) == 0.
  std::uint32_t depth(std::uint32_t v) const { return depth_[v]; }

  /// Number of vertices in v's subtree, including v.
  std::uint32_t subtree_size(std::uint32_t v) const { return size_[v]; }

  /// Nodes in a preorder where children are visited in the order given by
  /// children() (ascending id). Computed once, cached.
  const std::vector<std::uint32_t>& preorder() const { return preorder_; }

  /// Height: max depth over nodes.
  std::uint32_t height() const noexcept { return height_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::size_t> child_offset_;
  std::vector<std::uint32_t> children_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> size_;
  std::vector<std::uint32_t> preorder_;
  std::uint32_t root_ = kNoLocal;
  std::uint32_t height_ = 0;
};

}  // namespace croute

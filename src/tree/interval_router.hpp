/// \file interval_router.hpp
/// \brief Designer-port interval routing on trees: single-word labels.
///
/// Thorup–Zwick §2 also give a tree scheme for the *designer-port* model
/// (the scheme designer chooses how each node numbers its ports). There the
/// label of a destination is just its heavy-first DFS index — exactly
/// ceil(log2 n) bits, i.e. (1+o(1))·log2 n — and the routing decision uses
/// only locally stored information:
///
///   - port 0 of every non-root node leads to its parent;
///   - ports 1..deg lead to the children in heavy-first DFS order, so the
///     children's DFS intervals are consecutive: child i (1-based) covers
///     [start_i, start_{i+1}) where start_1 = dfs_in(v)+1 and
///     start_{deg+1} = dfs_out(v).
///
/// A node therefore only needs the boundaries of its children's intervals
/// to route: given dest label x, deliver if x == dfs_in(v); go to port 0 if
/// x outside (dfs_in(v), dfs_out(v)); otherwise binary-search the child
/// whose interval contains x. This implementation stores the boundary
/// array (O(deg(v)) words per node, O(n) total per tree) and reports the
/// label size of exactly ceil(log2 n) bits; the paper's refinement that
/// compresses per-node state to O(1) words by rounding interval boundaries
/// is noted in DESIGN.md as not implemented (the graph schemes use the
/// fixed-port scheme of tree_router.hpp anyway).
///
/// The simulator maps designer ports to graph ports through the
/// permutation exposed by to_graph_port().

#pragma once

#include <cstdint>
#include <vector>

#include "graph/spt.hpp"
#include "tree/heavy_path.hpp"

namespace croute {

/// Designer-port interval routing scheme over a LocalTree.
class IntervalTreeScheme {
 public:
  explicit IntervalTreeScheme(const LocalTree& tree);

  std::uint32_t size() const noexcept { return n_; }

  /// The label of a node: its heavy-first DFS index.
  std::uint32_t label(std::uint32_t local) const { return dfs_in_[local]; }

  /// Exact label length in bits.
  std::uint32_t label_bits() const noexcept { return label_bits_; }

  /// Routing decision at \p local toward destination label \p dest.
  /// Returns {deliver=true} or the *designer* port to take.
  struct Decision {
    bool deliver = false;
    std::uint32_t designer_port = 0;
  };
  Decision decide(std::uint32_t local, std::uint32_t dest) const;

  /// Translates a designer port at \p local into the underlying graph port.
  Port to_graph_port(std::uint32_t local, std::uint32_t designer_port) const;

  /// Node identified by a DFS label (for tests/simulation).
  std::uint32_t node_at(std::uint32_t dfs_label) const {
    return order_[dfs_label];
  }

  /// Words of local state stored at \p local (boundary array length + 2).
  std::uint32_t node_state_words(std::uint32_t local) const {
    return static_cast<std::uint32_t>(child_starts(local).size()) + 2;
  }

 private:
  std::span<const std::uint32_t> child_starts(std::uint32_t local) const {
    return {starts_.data() + start_offset_[local],
            start_offset_[local + 1] - start_offset_[local]};
  }

  std::uint32_t n_ = 0;
  std::uint32_t label_bits_ = 0;
  std::vector<std::uint32_t> dfs_in_;
  std::vector<std::uint32_t> dfs_out_;
  std::vector<std::uint32_t> order_;
  std::vector<std::size_t> start_offset_;   ///< CSR offsets into starts_
  std::vector<std::uint32_t> starts_;       ///< child interval start per child
  std::vector<std::size_t> port_offset_;    ///< CSR offsets into graph_port_
  std::vector<Port> graph_port_;            ///< designer port -> graph port
};

}  // namespace croute

/// \file mesh_noc.cpp
/// \brief Scenario: routing on a torus network-on-chip with tiny headers.
///
/// Meshes and tori are the locality-friendly end of the workload spectrum:
/// most clusters are geometric balls, so the stretch-3 scheme routes the
/// bulk of traffic on exact shortest paths. This example builds a 64×64
/// torus NoC, preprocesses the k = 2 scheme, and reports:
///
///   * the per-tile routing state (compare with the naive n-entry table),
///   * the exact header a flit carries (bit-accounted on the wire),
///   * the distribution of path stretch, and the fraction routed exactly,
///   * what happens to tail latency under a handshake (2k−1 vs 4k−5).
///
///   ./mesh_noc [--side=64] [--pairs=3000] [--seed=21]

#include <cstdio>

#include "core/stretch3.hpp"
#include "core/tz_router.hpp"
#include "graph/generators.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto side = static_cast<VertexId>(flags.get_int("side", 64));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 3000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  Rng rng(seed);
  const Graph g = grid2d(side, side, /*torus=*/true, rng);
  std::printf("NoC: %ux%u torus, %u tiles, %llu links\n", side, side,
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  Rng srng(seed + 1);
  const Stretch3Scheme s3(g, srng);
  const TZScheme& scheme = s3.scheme();
  const TZRouter& router = s3.router();

  std::printf("landmark tiles: %zu of %u\n", s3.landmarks().size(),
              g.num_vertices());
  std::printf("per-tile state: max %s, avg %s; naive full table: %s\n",
              format_bits(static_cast<double>(scheme.max_table_bits()))
                  .c_str(),
              format_bits(static_cast<double>(scheme.total_table_bits()) /
                          g.num_vertices())
                  .c_str(),
              format_bits(static_cast<double>(g.num_vertices()) *
                          bits_for_universe(5))
                  .c_str());
  std::printf("  (on a degree-4 torus a naive entry is only 3 bits, so the "
              "O(sqrt n) state advantage needs n >> 10^5 tiles; what the "
              "scheme buys at this size is the constant-size flit header "
              "and the locality below)\n");

  const Simulator sim(g);
  const auto pairs = sample_pairs(g, num_pairs, rng);

  std::uint32_t exact = 0;
  std::uint64_t max_header = 0;
  std::vector<double> stretches, hs_stretches;
  stretches.reserve(pairs.size());
  for (const auto& p : pairs) {
    const RouteResult r = route_tz(sim, scheme, p.s, p.t);
    const RouteResult h = route_tz_handshake(sim, scheme, p.s, p.t);
    if (!r.delivered() || !h.delivered()) {
      std::printf("undelivered pair %u->%u!\n", p.s, p.t);
      return 1;
    }
    stretches.push_back(r.length / p.exact);
    hs_stretches.push_back(h.length / p.exact);
    exact += r.length <= p.exact + 1e-12;
    max_header = std::max(max_header, r.header_bits);
  }
  const Summary direct = summarize(stretches);
  const Summary hs = summarize(hs_stretches);

  std::printf("flit header: max %llu bits on the wire\n",
              static_cast<unsigned long long>(max_header));
  std::printf("stretch (direct):    mean %.3f  p99 %.3f  max %.3f "
              "(bound 3)\n",
              direct.mean, direct.p99, direct.max);
  std::printf("stretch (handshake): mean %.3f  p99 %.3f  max %.3f "
              "(bound 3)\n",
              hs.mean, hs.p99, hs.max);
  std::printf("%.1f%% of flits ride exact shortest paths\n",
              100.0 * exact / static_cast<double>(pairs.size()));

  // One concrete flit, end to end.
  const TZHeader header = router.prepare(pairs[0].s, scheme.label(pairs[0].t));
  const RouteResult one = route_tz(sim, scheme, pairs[0].s, pairs[0].t);
  std::printf("sample flit %u -> %u via tree of %u: %u hops (exact %d)\n",
              pairs[0].s, pairs[0].t, header.tree_root, one.hops,
              static_cast<int>(pairs[0].exact));
  return direct.max <= 3.0 ? 0 : 1;
}

/// \file quickstart.cpp
/// \brief 60-second tour of the croute public API.
///
/// Builds a small synthetic network, preprocesses the Thorup–Zwick
/// stretch-3 scheme (§3 of SPAA'01), routes a few packets hop by hop
/// through the port-level simulator, and prints the space/stretch numbers
/// the paper is about.
///
///   ./quickstart [--n=2000] [--seed=7]

#include <cstdio>

#include "core/stretch3.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  // 1. A connected workload: Erdős–Rényi with average degree 8.
  Rng rng(seed);
  const Graph g = make_workload(GraphFamily::kErdosRenyi, n, rng);
  std::printf("graph: n=%u m=%llu (Erdos-Renyi, largest component)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Preprocess the stretch-3 scheme: landmarks A = center(G, sqrt(n)),
  //    clusters capped at 4*sqrt(n), one shortest-path tree per cluster.
  const Stretch3Scheme s3(g, rng);
  std::printf("landmarks: |A| = %zu\n", s3.landmarks().size());

  // 3. Space accounting — the paper's headline: Õ(sqrt(n)) bits per table,
  //    O(log n)-bit address labels.
  const TZScheme& scheme = s3.scheme();
  std::printf("max table:   %s\n",
              format_bits(static_cast<double>(scheme.max_table_bits()))
                  .c_str());
  std::printf("avg table:   %s\n",
              format_bits(static_cast<double>(scheme.total_table_bits()) /
                          g.num_vertices())
                  .c_str());

  // 4. Route sampled pairs through the hop-by-hop simulator and measure
  //    stretch against exact Dijkstra distances.
  const Simulator sim(g);
  const std::vector<PairSample> pairs = sample_pairs(g, 500, rng);
  const StretchReport report = measure_stretch(
      pairs, [&](VertexId s, VertexId t) {
        return route_tz(sim, scheme, s, t);
      });
  std::printf("routed %llu/%llu pairs: mean stretch %.3f, max %.3f "
              "(bound: 3)\n",
              static_cast<unsigned long long>(report.delivered),
              static_cast<unsigned long long>(report.pairs),
              report.stretch.mean, report.stretch.max);

  // 5. One packet in detail.
  const RouteResult one = route_tz(sim, scheme, pairs[0].s, pairs[0].t);
  std::printf("sample route: %s\n", one.describe().c_str());
  std::printf("  exact distance %.0f, header %llu bits\n", pairs[0].exact,
              static_cast<unsigned long long>(one.header_bits));

  return report.all_delivered() && report.stretch.max <= 3.0 ? 0 : 1;
}

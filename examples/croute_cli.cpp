/// \file croute_cli.cpp
/// \brief Command-line front end: generate graphs, preprocess schemes to
/// disk, and route queries — the full preprocess-once/route-many workflow.
///
/// ```
/// croute_cli gen        --family=er --n=2000 --seed=1 --out=g.gr [--weighted]
/// croute_cli preprocess --graph=g.gr --k=3 --seed=2 --out=s.bin
/// croute_cli stats      --graph=g.gr --scheme=s.bin
/// croute_cli route      --graph=g.gr --scheme=s.bin --s=0 --t=42 [--handshake]
/// ```
///
/// Families: er, geometric, grid, torus, ba, ws, ring, tree, regular.

#include <cstdio>
#include <string>

#include "core/scheme_io.hpp"
#include "core/tz_router.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace {

using namespace croute;

int usage() {
  std::fprintf(stderr,
               "usage: croute_cli <gen|preprocess|stats|route> [flags]\n"
               "  gen        --family=er|geometric|grid|torus|ba|ws|ring|"
               "tree|regular --n=N --seed=S --out=FILE [--weighted]\n"
               "  preprocess --graph=FILE --k=K --seed=S --out=FILE\n"
               "  stats      --graph=FILE --scheme=FILE\n"
               "  route      --graph=FILE --scheme=FILE --s=A --t=B "
               "[--handshake]\n");
  return 2;
}

GraphFamily parse_family(const std::string& name) {
  if (name == "er") return GraphFamily::kErdosRenyi;
  if (name == "geometric") return GraphFamily::kGeometric;
  if (name == "grid") return GraphFamily::kGrid;
  if (name == "torus") return GraphFamily::kTorus;
  if (name == "ba") return GraphFamily::kBarabasiAlbert;
  if (name == "ws") return GraphFamily::kWattsStrogatz;
  if (name == "ring") return GraphFamily::kRingOfCliques;
  if (name == "tree") return GraphFamily::kRandomTree;
  throw std::invalid_argument("unknown family: " + name);
}

int cmd_gen(const Flags& flags) {
  const std::string family = flags.get_string("family", "er");
  const auto n = static_cast<VertexId>(flags.get_int("n", 1000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string out = flags.get_string("out", "graph.gr");
  Rng rng(seed);
  Graph g;
  if (family == "regular") {
    g = random_regular(n, 6, rng,
                       flags.get_bool("weighted", false)
                           ? WeightModel::uniform_real(1.0, 10.0)
                           : WeightModel::unit());
  } else {
    g = make_workload(parse_family(family), n, rng,
                      flags.get_bool("weighted", false));
  }
  save_graph(out, g, "croute_cli gen --family=" + family);
  std::printf("wrote %s: n=%u m=%llu connected=%s\n", out.c_str(),
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              is_connected(g) ? "yes" : "no");
  return 0;
}

int cmd_preprocess(const Flags& flags) {
  const Graph g = load_graph(flags.get_string("graph", "graph.gr"));
  CROUTE_REQUIRE(is_connected(g),
                 "graph is disconnected; preprocess per component "
                 "(PartitionedScheme) or regenerate");
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  const std::string out = flags.get_string("out", "scheme.bin");
  Rng rng(seed);
  TZSchemeOptions opt;
  opt.pre.k = k;
  const TZScheme scheme(g, opt, rng);
  save_scheme_file(out, scheme);
  std::printf("wrote %s: k=%u, max table %s, avg table %s\n", out.c_str(),
              k,
              format_bits(static_cast<double>(scheme.max_table_bits()))
                  .c_str(),
              format_bits(static_cast<double>(scheme.total_table_bits()) /
                          g.num_vertices())
                  .c_str());
  return 0;
}

int cmd_stats(const Flags& flags) {
  const Graph g = load_graph(flags.get_string("graph", "graph.gr"));
  const TZScheme scheme =
      load_scheme_file(flags.get_string("scheme", "scheme.bin"), g);
  std::printf("graph: n=%u m=%llu max-degree=%u\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.max_degree());
  std::printf("scheme: k=%u, stretch bound %u (direct) / %u (handshake)\n",
              scheme.k(), scheme.k() == 1 ? 1 : 4 * scheme.k() - 5,
              2 * scheme.k() - 1);
  std::vector<double> table_bits, label_bits;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    table_bits.push_back(static_cast<double>(scheme.table_bits(v)));
    label_bits.push_back(static_cast<double>(scheme.label_bits(v)));
  }
  const Summary tb = summarize(std::move(table_bits));
  const Summary lb = summarize(std::move(label_bits));
  std::printf("tables: mean %s  p99 %s  max %s\n",
              format_bits(tb.mean).c_str(), format_bits(tb.p99).c_str(),
              format_bits(tb.max).c_str());
  std::printf("labels: mean %s  max %s\n", format_bits(lb.mean).c_str(),
              format_bits(lb.max).c_str());
  return 0;
}

int cmd_route(const Flags& flags) {
  const Graph g = load_graph(flags.get_string("graph", "graph.gr"));
  const TZScheme scheme =
      load_scheme_file(flags.get_string("scheme", "scheme.bin"), g);
  const auto s = static_cast<VertexId>(flags.get_int("s", 0));
  const auto t =
      static_cast<VertexId>(flags.get_int("t", g.num_vertices() - 1));
  const Simulator sim(g);
  const RouteResult r = flags.get_bool("handshake", false)
                            ? route_tz_handshake(sim, scheme, s, t)
                            : route_tz(sim, scheme, s, t);
  std::printf("%s\n", r.describe().c_str());
  const Weight exact = distances_from(g, s)[t];
  if (r.delivered() && exact > 0) {
    std::printf("exact %.6g, stretch %.4f, header %llu bits\n", exact,
                r.length / exact,
                static_cast<unsigned long long>(r.header_bits));
  }
  return r.delivered() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) return usage();
  const std::string cmd = flags.positional().front();
  try {
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "preprocess") return cmd_preprocess(flags);
    if (cmd == "stats") return cmd_stats(flags);
    if (cmd == "route") return cmd_route(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

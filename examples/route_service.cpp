/// \file route_service.cpp
/// \brief CLI front end for the concurrent route-query engine.
///
/// Spins up a RouteService over a generated (or loaded) graph, then
/// either drives one of the traffic scenarios through it in a closed
/// loop and prints the serving report (throughput, latency percentiles,
/// stretch, space), or — with --listen — serves the wire protocol over
/// TCP until SIGINT/SIGTERM.
///
/// ```
/// ./route_service --scheme=tz --workload=hotspot --threads=4 --seed=7
/// ./route_service --family=ba --n=20000 --scheme=cowen --workload=gravity
/// ./route_service --graph=g.gr --warm=scheme.bin --workload=far
/// ./route_service --workload=hotspot --churn=3     # hot-swap under load
/// ./route_service --listen --port=4800             # network serving
/// ```
///
/// Shared flags (parsed by service/cli.hpp, used by every serving
/// binary): --graph | --family --n [--weighted]  --scheme --k --sampling
/// --seed --threads --lookup --batch-group [--legacy] --warm
/// --artifact-dir --artifact-retain --rebuild-retries [--no-metrics]
/// --workload --queries --batch --source-pool [--exact]
///
/// Binary-specific flags:
/// --churn=C (run the closed loop under C background rebuild+swap
/// cycles) [--full-rebuild] (full preprocessing per churn rebuild)
/// --metrics-out=FILE (Prometheus text on exit; under --churn rewritten
/// every --metrics-every batches) --trace-out=FILE (Chrome trace JSON)
/// [--verify-recovery] (prove the serving generation matches a fresh
/// build on seeded probes; pair with --artifact-dir)
/// [--listen] (serve the wire protocol instead of driving traffic)
/// --port=P (listen port; 0 = ephemeral, printed) --net-coalesce=N
/// --net-max-pending=N --net-max-connections=N (front-end admission
/// control; see net/server.hpp)
/// env CROUTE_SIMD=generic|sse42|avx2|neon forces the SIMD batch kernels

#include <csignal>
#include <cstdio>
#include <string>

#include "net/server.hpp"
#include "obs/export.hpp"
#include "service/cli.hpp"
#include "service/hot_swap.hpp"
#include "service/route_service.hpp"
#include "service/workload.hpp"
#include "simd/simd.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace {

using namespace croute;

net::NetServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

/// Network serving mode: blocks on the epoll loop until SIGINT/SIGTERM.
int run_listen_mode(RouteService& service, const Flags& flags) {
  net::NetServerOptions nopt;
  nopt.port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  nopt.coalesce = static_cast<std::uint32_t>(
      flags.get_int("net-coalesce", static_cast<int>(nopt.coalesce)));
  nopt.max_pending = static_cast<std::uint32_t>(
      flags.get_int("net-max-pending", static_cast<int>(nopt.max_pending)));
  nopt.max_connections = static_cast<std::uint32_t>(flags.get_int(
      "net-max-connections", static_cast<int>(nopt.max_connections)));
  net::NetServer server(service, nopt);
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // The port line is a readiness signal: CI greps for it before
  // connecting, so flush immediately.
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  server.run();
  g_server = nullptr;
  std::printf("net: served %llu queries in %llu frames over %llu "
              "connections\n",
              static_cast<unsigned long long>(server.queries_served()),
              static_cast<unsigned long long>(server.frames_served()),
              static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    const ServiceSetup setup = parse_service_setup(flags);
    const RouteServiceOptions& opt = setup.service;
    const std::string metrics_out = flags.get_string("metrics-out", "");
    const std::string trace_out = flags.get_string("trace-out", "");
    const auto metrics_every =
        static_cast<std::uint64_t>(flags.get_int("metrics-every", 50));

    Graph g = setup.build_graph();
    std::printf("graph: n=%u m=%llu\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
    RouteService service(g, opt);
    std::printf("service: scheme=%s threads=%u path=%s batch-group=%u "
                "simd=%s%s\n",
                scheme_name(opt.scheme), service.threads(),
                opt.use_flat
                    ? (std::string("flat/") + flat_lookup_name(opt.flat_lookup))
                          .c_str()
                    : "legacy",
                opt.use_flat ? opt.batch_group : 0,
                simd::ops().name,
                opt.warm_start_path.empty()
                    ? ""
                    : (" (warm start: " + opt.warm_start_path + ")").c_str());
    if (!opt.persist.dir.empty()) {
      if (service.recovered_from_artifact()) {
        std::printf("persist: recovered generation %llu from %s (%s)\n",
                    static_cast<unsigned long long>(
                        service.recovered_generation()),
                    opt.persist.dir.c_str(), service.recovery_note().c_str());
      } else {
        std::printf("persist: fresh build%s%s\n",
                    service.recovery_note().empty() ? "" : " — ",
                    service.recovery_note().c_str());
      }
    }

    if (flags.get_bool("verify-recovery", false)) {
      // Recovery proof: a service preprocessed from scratch on the same
      // graph and construction options must answer identically to the
      // serving generation (whether that generation was recovered from
      // disk or just built). Diverging answers mean a corrupt or
      // mismatched artifact slipped past verification — fail loudly.
      RouteServiceOptions fresh_opt = opt;
      fresh_opt.persist.dir.clear();
      fresh_opt.warm_start_path.clear();
      const RouteService fresh(service.graph(), fresh_opt);
      Rng prng(setup.seed + 4);
      const VertexId n = service.graph().num_vertices();
      const int probes = 4096;
      int mismatches = 0;
      for (int i = 0; i < probes; ++i) {
        RouteQuery q;
        q.s = static_cast<VertexId>(prng.next_below(n));
        q.t = static_cast<VertexId>(prng.next_below(n));
        if (!same_route(service.route_one(q), fresh.route_one(q)))
          ++mismatches;
      }
      std::printf("verify-recovery: matches fresh build on %d probes ... %s\n",
                  probes, mismatches == 0 ? "yes" : "NO");
      if (mismatches != 0) {
        std::fprintf(stderr,
                     "error: serving generation diverges from a fresh "
                     "build on %d/%d probes\n",
                     mismatches, probes);
        return 1;
      }
    }

    if (flags.get_bool("listen", false)) {
      return run_listen_mode(service, flags);
    }

    std::vector<RouteQuery> traffic = setup.build_traffic(g);

    DriverOptions dopt = setup.driver;
    const auto churn_cycles =
        static_cast<std::uint32_t>(flags.get_int("churn", 0));
    // Periodic metrics dump under churn: rewrite the Prometheus file
    // every --metrics-every batches so a scraper (or a watching human)
    // sees the run live, not just its final state.
    if (!metrics_out.empty() && churn_cycles > 0 &&
        service.metrics_registry() != nullptr && metrics_every > 0) {
      dopt.on_batch = [&service, &metrics_out,
                       metrics_every](std::uint64_t batches_done) {
        if (batches_done % metrics_every != 0) return;
        obs::write_text_file(
            metrics_out,
            obs::to_prometheus(
                obs::snapshot_metrics(*service.metrics_registry())));
      };
    }
    DriverReport r;
    if (churn_cycles > 0) {
      SchemeManager manager(service);
      ChurnOptions copt;
      copt.cycles = churn_cycles;
      copt.seed = setup.seed + 3;
      copt.full_rebuild = flags.get_bool("full-rebuild", false);
      const ChurnReport churn =
          run_closed_loop_churn(service, manager, traffic, dopt, copt);
      r = churn.driver;
      std::printf("churn:   %llu hot swaps under load; rebuilds %.3fs "
                  "total (%.3fs flat compile); %llu straddled batches; "
                  "blackout max %.1fus\n",
                  static_cast<unsigned long long>(churn.swaps),
                  churn.rebuild_seconds, churn.flat_compile_seconds,
                  static_cast<unsigned long long>(churn.straddled_batches),
                  churn.max_blackout_us);
      if (churn.incremental_rebuilds > 0) {
        std::printf("         delta-aware: %llu/%llu rebuilds incremental, "
                    "%.1f%% SPT reuse, %.3fs TZ preprocessing\n",
                    static_cast<unsigned long long>(
                        churn.incremental_rebuilds),
                    static_cast<unsigned long long>(churn.swaps),
                    100 * churn.reuse_ratio(),
                    churn.incremental_preprocess_seconds);
      }
    } else {
      r = run_closed_loop(service, traffic, dopt);
    }

    std::printf("traffic: %s, %llu queries in batches of %u\n",
                workload_name(setup.workload),
                static_cast<unsigned long long>(r.queries),
                dopt.batch_size);
    std::printf("served:  %.0f qps, wall %.3fs, delivered %llu/%llu\n",
                r.qps, r.wall_seconds,
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.queries));
    std::printf("latency: p50 %.2fus  p95 %.2fus  p99 %.2fus  "
                "(queue wait p99 %.2fus)\n",
                r.latency_p50_us, r.latency_p95_us, r.latency_p99_us,
                r.queue_wait_p99_us);
    if (r.stretch.count > 0) {
      std::printf("stretch: mean %.4f  p99 %.4f  max %.4f (%llu measured)\n",
                  r.stretch.mean, r.stretch.p99, r.stretch.max,
                  static_cast<unsigned long long>(r.stretch.count));
    }
    std::printf("hops:    mean %.2f, max header %llu bits\n", r.mean_hops,
                static_cast<unsigned long long>(r.max_header_bits));

    const ServiceTelemetry tel = service.telemetry();
    std::printf("telemetry: %llu queries over %llu batches, busy %.3fs "
                "across %u workers\n",
                static_cast<unsigned long long>(tel.queries),
                static_cast<unsigned long long>(tel.batches),
                tel.busy_seconds, service.threads());

    // Final exporter dumps (the periodic churn hook may have written an
    // intermediate metrics file already; this is the complete run).
    if (!metrics_out.empty() && service.metrics_registry() != nullptr) {
      obs::write_text_file(
          metrics_out,
          obs::to_prometheus(
              obs::snapshot_metrics(*service.metrics_registry())));
      std::printf("metrics: wrote %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty() && service.trace_recorder() != nullptr) {
      obs::TraceRecorder& trace = *service.trace_recorder();
      obs::write_text_file(trace_out, obs::to_chrome_trace(trace.events()));
      std::printf("trace:   wrote %s (%llu spans%s)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(trace.total()),
                  trace.dropped() > 0 ? ", ring wrapped" : "");
    }
    return r.all_delivered() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// \file route_service.cpp
/// \brief CLI front end for the concurrent route-query engine.
///
/// Spins up a RouteService over a generated (or loaded) graph, drives one
/// of the traffic scenarios through it in a closed loop, and prints the
/// serving report: throughput, latency percentiles, stretch, and space.
///
/// ```
/// ./route_service --scheme=tz --workload=hotspot --threads=4 --seed=7
/// ./route_service --family=ba --n=20000 --scheme=cowen --workload=gravity
/// ./route_service --graph=g.gr --warm=scheme.bin --workload=far
/// ./route_service --workload=hotspot --churn=3     # hot-swap under load
/// ```
///
/// Flags: --scheme=tz|tz-handshake|cowen|full  --workload=uniform|gravity|
/// hotspot|far  --threads=N (0 = all cores)  --seed=S  --family --n
/// [--weighted]  --graph=FILE (instead of --family/--n)  --warm=FILE
/// (scheme_io warm start, TZ only)  --queries --batch --k --source-pool
/// [--exact] (attach exact distances for stretch even off the far workload)
/// [--legacy] (serve through the sim/ adapters instead of the flat view)
/// --lookup=fks|eytzinger (flat lookup layout)
/// --batch-group=G (flat pipeline depth: G in-flight descents per worker;
/// must be a power of two, or 0 = scalar serving)
/// env CROUTE_SIMD=generic|sse42|avx2|neon forces the SIMD implementation
/// the batch kernels dispatch to (unavailable values fall back to generic)
/// --churn=C (run the closed loop under C background rebuild+swap cycles;
/// prints swap, blackout and rebuild telemetry incl. the delta-aware
/// rebuild's SPT reuse ratio)
/// [--full-rebuild] (churn escape hatch: full preprocessing per rebuild
/// instead of the default delta-aware incremental path)
/// --sampling=centered|bernoulli (TZ landmark sampler; bernoulli's
/// graph-independent hierarchy roughly doubles churn SPT reuse at the
/// price of expected- instead of worst-case table bounds)
/// --metrics-out=FILE (write the service's metric registry as Prometheus
/// text format on exit; under --churn the file is also rewritten every
/// --metrics-every batches, so a scraper watching it sees the run live)
/// --trace-out=FILE (write the rebuild/swap trace as Chrome trace-event
/// JSON on exit — load into chrome://tracing or ui.perfetto.dev)
/// [--no-metrics] (disable the observability layer entirely — overhead
/// A/B runs)
/// --artifact-dir=DIR (crash-safe persistence: recover the newest valid
/// scheme artifact from DIR on start — falling back to fresh
/// preprocessing when none verifies — and persist every published
/// generation there; covers every scheme kind, unlike --warm)
/// --artifact-retain=N (keep the newest N generations on disk, plus the
/// manifest-pinned live/backup pair; default 2)
/// --rebuild-retries=R (retry a failed background rebuild up to R times
/// under capped exponential backoff before surfacing; default 0)
/// [--verify-recovery] (after start, rebuild fresh on the same graph and
/// prove the serving generation answers a seeded probe identically —
/// exits 1 on divergence; pair with --artifact-dir)

#include <cstdio>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "obs/export.hpp"
#include "service/hot_swap.hpp"
#include "service/route_service.hpp"
#include "service/workload.hpp"
#include "sim/experiment.hpp"
#include "simd/simd.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace {

using namespace croute;

GraphFamily parse_family(const std::string& name) {
  if (name == "er") return GraphFamily::kErdosRenyi;
  if (name == "geometric") return GraphFamily::kGeometric;
  if (name == "grid") return GraphFamily::kGrid;
  if (name == "torus") return GraphFamily::kTorus;
  if (name == "ba") return GraphFamily::kBarabasiAlbert;
  if (name == "ws") return GraphFamily::kWattsStrogatz;
  if (name == "ring") return GraphFamily::kRingOfCliques;
  throw std::invalid_argument("unknown family: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

    // Flag-combination errors should fire before any graph or
    // preprocessing work: --warm carries a scheme_io TZ file, which only
    // the TZ schemes can load.
    {
      const SchemeKind scheme = parse_scheme(flags.get_string("scheme", "tz"));
      const std::string warm = flags.get_string("warm", "");
      const bool is_tz = scheme == SchemeKind::kTZDirect ||
                         scheme == SchemeKind::kTZHandshake;
      if (!warm.empty() && !is_tz) {
        throw std::invalid_argument(
            "--warm=" + warm +
            " is a scheme_io TZ preprocessing file, which --scheme=" +
            scheme_name(scheme) +
            " cannot load — drop --warm, or use --artifact-dir (the "
            "persist tier covers every scheme kind)");
      }
    }

    Graph g;
    const std::string graph_path = flags.get_string("graph", "");
    if (!graph_path.empty()) {
      g = load_graph(graph_path);
    } else {
      Rng grng(seed);
      g = make_workload(parse_family(flags.get_string("family", "er")),
                        static_cast<VertexId>(flags.get_int("n", 10000)),
                        grng, flags.get_bool("weighted", false));
    }

    RouteServiceOptions opt;
    opt.scheme = parse_scheme(flags.get_string("scheme", "tz"));
    opt.threads = static_cast<unsigned>(flags.get_int("threads", 0));
    opt.k = static_cast<std::uint32_t>(flags.get_int("k", 3));
    opt.sampling = parse_sampling(flags.get_string("sampling", "centered"));
    opt.seed = seed + 1;
    opt.warm_start_path = flags.get_string("warm", "");
    opt.use_flat = !flags.get_bool("legacy", false);
    const std::string lookup = flags.get_string("lookup", "eytzinger");
    opt.flat_lookup =
        lookup == "fks" ? FlatLookup::kFKS : FlatLookup::kEytzinger;
    opt.batch_group = static_cast<std::uint32_t>(
        flags.get_int("batch-group", opt.batch_group));
    if (opt.batch_group != 0 &&
        (opt.batch_group & (opt.batch_group - 1)) != 0) {
      throw std::invalid_argument(
          "--batch-group expects 0 (scalar serving) or a power of two "
          "(e.g. 16, 32, 64), got " +
          std::to_string(opt.batch_group));
    }
    opt.artifact_dir = flags.get_string("artifact-dir", "");
    opt.artifact_retain = static_cast<std::uint32_t>(
        flags.get_int("artifact-retain", static_cast<int>(opt.artifact_retain)));
    opt.rebuild_retries = static_cast<std::uint32_t>(
        flags.get_int("rebuild-retries", static_cast<int>(opt.rebuild_retries)));
    opt.metrics = !flags.get_bool("no-metrics", false);
    const std::string metrics_out = flags.get_string("metrics-out", "");
    const std::string trace_out = flags.get_string("trace-out", "");
    const auto metrics_every =
        static_cast<std::uint64_t>(flags.get_int("metrics-every", 50));

    std::printf("graph: n=%u m=%llu\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
    RouteService service(g, opt);
    std::printf("service: scheme=%s threads=%u path=%s batch-group=%u "
                "simd=%s%s\n",
                scheme_name(opt.scheme), service.threads(),
                opt.use_flat
                    ? (std::string("flat/") + flat_lookup_name(opt.flat_lookup))
                          .c_str()
                    : "legacy",
                opt.use_flat ? opt.batch_group : 0,
                simd::ops().name,
                opt.warm_start_path.empty()
                    ? ""
                    : (" (warm start: " + opt.warm_start_path + ")").c_str());
    if (!opt.artifact_dir.empty()) {
      if (service.recovered_from_artifact()) {
        std::printf("persist: recovered generation %llu from %s (%s)\n",
                    static_cast<unsigned long long>(
                        service.recovered_generation()),
                    opt.artifact_dir.c_str(), service.recovery_note().c_str());
      } else {
        std::printf("persist: fresh build%s%s\n",
                    service.recovery_note().empty() ? "" : " — ",
                    service.recovery_note().c_str());
      }
    }

    if (flags.get_bool("verify-recovery", false)) {
      // Recovery proof: a service preprocessed from scratch on the same
      // graph and construction options must answer identically to the
      // serving generation (whether that generation was recovered from
      // disk or just built). Diverging answers mean a corrupt or
      // mismatched artifact slipped past verification — fail loudly.
      RouteServiceOptions fresh_opt = opt;
      fresh_opt.artifact_dir.clear();
      fresh_opt.warm_start_path.clear();
      const RouteService fresh(service.graph(), fresh_opt);
      Rng prng(seed + 4);
      const VertexId n = service.graph().num_vertices();
      const int probes = 4096;
      int mismatches = 0;
      for (int i = 0; i < probes; ++i) {
        RouteQuery q;
        q.s = static_cast<VertexId>(prng.next_below(n));
        q.t = static_cast<VertexId>(prng.next_below(n));
        if (!same_route(service.route_one(q), fresh.route_one(q)))
          ++mismatches;
      }
      std::printf("verify-recovery: matches fresh build on %d probes ... %s\n",
                  probes, mismatches == 0 ? "yes" : "NO");
      if (mismatches != 0) {
        std::fprintf(stderr,
                     "error: serving generation diverges from a fresh "
                     "build on %d/%d probes\n",
                     mismatches, probes);
        return 1;
      }
    }

    const WorkloadKind workload =
        parse_workload(flags.get_string("workload", "uniform"));
    TrafficOptions topt;
    topt.source_pool =
        static_cast<std::uint32_t>(flags.get_int("source-pool", 64));
    Rng trng(seed + 2);
    std::vector<RouteQuery> traffic = make_traffic(
        g, workload,
        static_cast<std::uint32_t>(flags.get_int("queries", 100000)), trng,
        topt);
    if (flags.get_bool("exact", false) ||
        workload == WorkloadKind::kFarPairs) {
      attach_exact_distances(g, traffic);
    }

    DriverOptions dopt;
    dopt.batch_size =
        static_cast<std::uint32_t>(flags.get_int("batch", 2048));

    const auto churn_cycles =
        static_cast<std::uint32_t>(flags.get_int("churn", 0));
    // Periodic metrics dump under churn: rewrite the Prometheus file
    // every --metrics-every batches so a scraper (or a watching human)
    // sees the run live, not just its final state.
    if (!metrics_out.empty() && churn_cycles > 0 &&
        service.metrics_registry() != nullptr && metrics_every > 0) {
      dopt.on_batch = [&service, &metrics_out,
                       metrics_every](std::uint64_t batches_done) {
        if (batches_done % metrics_every != 0) return;
        obs::write_text_file(
            metrics_out,
            obs::to_prometheus(
                obs::snapshot_metrics(*service.metrics_registry())));
      };
    }
    DriverReport r;
    if (churn_cycles > 0) {
      SchemeManager manager(service);
      ChurnOptions copt;
      copt.cycles = churn_cycles;
      copt.seed = seed + 3;
      copt.full_rebuild = flags.get_bool("full-rebuild", false);
      const ChurnReport churn =
          run_closed_loop_churn(service, manager, traffic, dopt, copt);
      r = churn.driver;
      std::printf("churn:   %llu hot swaps under load; rebuilds %.3fs "
                  "total (%.3fs flat compile); %llu straddled batches; "
                  "blackout max %.1fus\n",
                  static_cast<unsigned long long>(churn.swaps),
                  churn.rebuild_seconds, churn.flat_compile_seconds,
                  static_cast<unsigned long long>(churn.straddled_batches),
                  churn.max_blackout_us);
      if (churn.incremental_rebuilds > 0) {
        std::printf("         delta-aware: %llu/%llu rebuilds incremental, "
                    "%.1f%% SPT reuse, %.3fs TZ preprocessing\n",
                    static_cast<unsigned long long>(
                        churn.incremental_rebuilds),
                    static_cast<unsigned long long>(churn.swaps),
                    100 * churn.reuse_ratio(),
                    churn.incremental_preprocess_seconds);
      }
    } else {
      r = run_closed_loop(service, traffic, dopt);
    }

    std::printf("traffic: %s, %llu queries in batches of %u\n",
                workload_name(workload),
                static_cast<unsigned long long>(r.queries),
                dopt.batch_size);
    std::printf("served:  %.0f qps, wall %.3fs, delivered %llu/%llu\n",
                r.qps, r.wall_seconds,
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.queries));
    std::printf("latency: p50 %.2fus  p95 %.2fus  p99 %.2fus  "
                "(queue wait p99 %.2fus)\n",
                r.latency_p50_us, r.latency_p95_us, r.latency_p99_us,
                r.queue_wait_p99_us);
    if (r.stretch.count > 0) {
      std::printf("stretch: mean %.4f  p99 %.4f  max %.4f (%llu measured)\n",
                  r.stretch.mean, r.stretch.p99, r.stretch.max,
                  static_cast<unsigned long long>(r.stretch.count));
    }
    std::printf("hops:    mean %.2f, max header %llu bits\n", r.mean_hops,
                static_cast<unsigned long long>(r.max_header_bits));

    const ServiceTelemetry tel = service.telemetry();
    std::printf("telemetry: %llu queries over %llu batches, busy %.3fs "
                "across %u workers\n",
                static_cast<unsigned long long>(tel.queries),
                static_cast<unsigned long long>(tel.batches),
                tel.busy_seconds, service.threads());

    // Final exporter dumps (the periodic churn hook may have written an
    // intermediate metrics file already; this is the complete run).
    if (!metrics_out.empty() && service.metrics_registry() != nullptr) {
      obs::write_text_file(
          metrics_out,
          obs::to_prometheus(
              obs::snapshot_metrics(*service.metrics_registry())));
      std::printf("metrics: wrote %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty() && service.trace_recorder() != nullptr) {
      obs::TraceRecorder& trace = *service.trace_recorder();
      obs::write_text_file(trace_out, obs::to_chrome_trace(trace.events()));
      std::printf("trace:   wrote %s (%llu spans%s)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(trace.total()),
                  trace.dropped() > 0 ? ", ring wrapped" : "");
    }
    return r.all_delivered() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// \file tree_labels.cpp
/// \brief Scenario: addressing an overlay multicast tree (§2 standalone).
///
/// The §2 tree scheme is useful on its own: give every node of a
/// distribution tree a short address such that any node can forward
/// toward any other using O(1) local state. This example builds a skewed
/// 50,000-node overlay tree, prints the exact label-length distribution
/// for both port models, decodes one label on the wire, and routes a few
/// messages hop by hop.
///
///   ./tree_labels [--n=50000] [--seed=33]

#include <cmath>
#include <cstdio>

#include "graph/generators.hpp"
#include "sim/simulator.hpp"
#include "tree/heavy_path.hpp"
#include "tree/interval_router.hpp"
#include "tree/tree_router.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 50000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 33));

  Rng rng(seed);
  const Graph g = random_tree(n, rng);
  const LocalTree tree = make_local_tree(dijkstra(g, 0));
  std::printf("overlay tree: %u nodes, height %u\n", tree.size(),
              Tree::from_local_tree(tree).height());

  // Fixed-port scheme: labels carry the light-branch ports.
  const TreeRoutingScheme trs(tree);
  const TreeRoutingScheme::Codec codec(tree.size(), g.max_degree());
  std::vector<double> bits;
  bits.reserve(trs.size());
  for (std::uint32_t v = 0; v < trs.size(); ++v) {
    bits.push_back(
        static_cast<double>(TreeRoutingScheme::label_bits(trs.label(v),
                                                          codec)));
  }
  const Summary fixed = summarize(std::move(bits));
  std::printf("fixed-port labels:    mean %.1f bits, p99 %.0f, max %.0f "
              "(log2 n = %.1f)\n",
              fixed.mean, fixed.p99, fixed.max,
              std::log2(static_cast<double>(n)));

  // Designer-port scheme: exactly ceil(log2 n) bits.
  const IntervalTreeScheme its(tree);
  std::printf("designer-port labels: %u bits each\n", its.label_bits());

  // Wire round-trip of one label.
  const std::uint32_t target = n / 3;
  BitWriter w;
  TreeRoutingScheme::encode_label(trs.label(target), codec, w);
  BitReader r(w);
  const TreeLabel wire = TreeRoutingScheme::decode_label(codec, r);
  std::printf("label of node %u: %llu bits on the wire, round-trips %s\n",
              target, static_cast<unsigned long long>(w.bit_size()),
              wire == trs.label(target) ? "losslessly" : "WRONG");

  // Route a few messages through the port-level simulator.
  const Simulator sim(g);
  for (const std::uint32_t s : {std::uint32_t{1}, n / 2, n - 1}) {
    const RouteResult res = route_tree(sim, tree, trs, s, target);
    if (!res.delivered()) {
      std::printf("FAILED: %s\n", res.describe().c_str());
      return 1;
    }
    std::printf("routed %u -> %u in %u hops (header %llu bits)\n", s, target,
                res.hops, static_cast<unsigned long long>(res.header_bits));
  }
  return 0;
}

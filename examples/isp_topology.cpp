/// \file isp_topology.cpp
/// \brief Scenario: compact routing on an Internet-like AS topology.
///
/// The motivating application of compact routing is exactly this setting:
/// BGP-style routers cannot afford Θ(n) forwarding state as the network
/// grows. We model an AS graph with a Barabási–Albert preferential-
/// attachment topology (heavy-tailed degrees — a few huge exchange hubs,
/// many stubs) plus latency-like weights, then contrast:
///
///   * full shortest-path forwarding tables (what exact routing costs),
///   * Thorup–Zwick k = 2 (stretch ≤ 3) and k = 3 (stretch ≤ 7),
///
/// reporting per-router state, address label sizes, and the latency
/// stretch actually suffered by sampled traffic. The punchline the paper
/// promises: hub routers — the worst case for naive schemes — keep small
/// tables too, because center() caps *every* cluster.
///
///   ./isp_topology [--n=6000] [--pairs=2000] [--seed=13]

#include <cstdio>

#include "baseline/full_table.hpp"
#include "core/tz_scheme.hpp"
#include "graph/generators.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 6000));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 13));

  // AS-like topology: preferential attachment, weights ~ link latency.
  Rng rng(seed);
  const Graph g =
      barabasi_albert(n, 3, rng, WeightModel::uniform_real(1.0, 20.0));
  std::printf("AS topology: %u routers, %llu links, max degree %u (hub)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.max_degree());

  const Simulator sim(g);
  const auto pairs = sample_pairs(g, num_pairs, rng);

  TextTable table({"scheme", "stretch bound", "latency stretch p50",
                   "p99", "max", "max router state", "hub state",
                   "address bits"});

  // Which router is the biggest hub? The worst case for table size.
  VertexId hub = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }

  {
    const FullTableScheme full(g);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_full(sim, full, s, t); });
    std::uint64_t max_bits = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      max_bits = std::max(max_bits, full.table_bits(v));
    }
    table.row()
        .add("exact (full tables)")
        .add(std::uint64_t{1})
        .add(rep.stretch.p50, 3)
        .add(rep.stretch.p99, 3)
        .add(rep.stretch.max, 3)
        .add(format_bits(static_cast<double>(max_bits)))
        .add(format_bits(static_cast<double>(full.table_bits(hub))))
        .add(format_bits(static_cast<double>(full.label_bits())));
  }

  for (const std::uint32_t k : {2u, 3u}) {
    Rng srng(seed * 7 + k);
    TZSchemeOptions opt;
    opt.pre.k = k;
    const TZScheme scheme(g, opt, srng);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_tz(sim, scheme, s, t); });
    std::uint64_t max_label = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      max_label = std::max(max_label, scheme.label_bits(v));
    }
    table.row()
        .add("thorup-zwick k=" + std::to_string(k))
        .add(static_cast<std::uint64_t>(4 * k - 5))
        .add(rep.stretch.p50, 3)
        .add(rep.stretch.p99, 3)
        .add(rep.stretch.max, 3)
        .add(format_bits(static_cast<double>(scheme.max_table_bits())))
        .add(format_bits(static_cast<double>(scheme.table_bits(hub))))
        .add(format_bits(static_cast<double>(max_label)));
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "note: the hub router (degree %u) needs Theta(n log deg) exact "
      "state but stays compact under TZ — the center() cap at work.\n",
      g.degree(hub));
  return 0;
}

/// \file bench_micro_decision.cpp
/// \brief Experiment micro — O(1) decision costs, legacy vs flat layout.
///
/// Claim (SPAA'01): routing decisions are constant time — one table
/// lookup plus an O(1) interval test. What that costs in practice is a
/// memory-layout question, and this bench tracks it across PRs: the
/// legacy pointer-rich structures (per-vertex VertexTable binary search,
/// ClusterDirectory probe, TreeLabel-allocating prepare) against the flat
/// structure-of-arrays view of core/flat_scheme.hpp in both lookup
/// layouts (Eytzinger descent and the global FKS perfect hash).
///
/// "decision" is the full source decision: prepare (rule 0 + label scan)
/// followed by the first per-hop step — exactly the per-packet work the
/// paper bounds. The headline `flat_speedup` scalar is
/// legacy_decision_ns / flat_decision_ns for the default (FKS) layout.
///
/// The `route/*` rows measure the *serving* op — prepare plus the whole
/// per-hop walk to delivery — scalar versus the batch-pipelined engine
/// (core/flat_batch.hpp, --batch-group lanes interleaved in a software
/// pipeline). The walk is where pipelining pays: one query's hop chain is
/// strictly load-dependent (the out-of-order core cannot overlap hop i+1
/// with hop i), but G queries' chains interleaved keep G misses in
/// flight. The single prepare+step rows gain little from batching on
/// wide cores — consecutive scalar iterations already overlap — which is
/// why the batched trajectory numbers are route-level. Both paths make
/// identical decisions; `route_decisions_per_query` converts ns/query to
/// ns/decision.
///
/// Flags: --n (default 10000) --k --pairs --iters --seed
///        --batch-group (pipeline depth of the batched rows; default 32 =
///        the sweep's best config on the reference container, where the
///        interleaved AVX2 kernel wants two full 8-lane groups in flight)
///        --json out.json (JsonReport trajectory file)
/// Baseline decisions (Cowen step, full-table next-hop, oracle query,
/// bare tree decide) are additionally measured when n <= 4096 (their
/// preprocessing is quadratic-ish; the default n skips them).

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "baseline/cowen.hpp"
#include "baseline/full_table.hpp"
#include "bench_common.hpp"
#include "core/flat_batch.hpp"
#include "core/flat_scheme.hpp"
#include "core/tz_router.hpp"
#include "core/tz_scheme.hpp"
#include "oracle/distance_oracle.hpp"
#include "sim/experiment.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"

namespace {

using namespace croute;

/// Accumulator the optimizer cannot remove.
volatile std::uint64_t g_sink = 0;

/// Runs fn(i) for iters iterations (after a 1/8 warmup) and returns the
/// mean cost in nanoseconds.
template <typename Fn>
double measure_ns(std::uint64_t iters, Fn&& fn) {
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters / 8; ++i) sink += fn(i);
  bench::Stopwatch sw;
  for (std::uint64_t i = 0; i < iters; ++i) sink += fn(i);
  const double ns = sw.seconds() * 1e9 / static_cast<double>(iters);
  g_sink = g_sink + sink;
  return ns;
}

}  // namespace

int main(int argc, char** argv) try {
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 10000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 3));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 512));
  const auto iters = static_cast<std::uint64_t>(
      flags.get_int("iters", 200000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::uint32_t batch_group = bench::parse_batch_group(
      flags.get_string("batch-group", "32"), /*allow_zero=*/false);
  const std::string json_path = flags.get_string("json", "");

  bench::banner("micro",
                "O(1) decision time: flat SoA layout vs legacy structures",
                ("family=er n=" + std::to_string(n) +
                 " k=" + std::to_string(k) +
                 " pairs=" + std::to_string(num_pairs))
                    .c_str());

  Rng grng(seed);
  const Graph g = make_workload(GraphFamily::kErdosRenyi, n, grng);
  TZSchemeOptions opt;
  opt.pre.k = k;
  Rng srng(seed + 1);
  bench::Stopwatch build_watch;
  const TZScheme scheme(g, opt, srng);
  const double preprocess_s = build_watch.seconds();

  build_watch.reset();
  FlatSchemeOptions eopt;
  eopt.lookup = FlatLookup::kEytzinger;
  const FlatScheme flat_eytz(scheme, eopt);
  FlatSchemeOptions fopt;
  fopt.lookup = FlatLookup::kFKS;
  const FlatScheme flat_fks(scheme, fopt);
  const double compile_s = build_watch.seconds();

  const TZRouter router(scheme);
  const FlatRouter router_eytz(flat_eytz);
  const FlatRouter router_fks(flat_fks);

  Rng prng(seed + 2);
  const std::vector<PairSample> pairs = sample_pairs(g, num_pairs, prng);
  const auto pair_at = [&](std::uint64_t i) -> const PairSample& {
    return pairs[i % pairs.size()];
  };
  // Per-hop step fixture: headers in the top-level tree (every vertex
  // holds an entry for a top-level center).
  const VertexId top_root =
      scheme.preprocessing().effective_pivot(k - 1, pairs[0].t);
  const TZHeader top_legacy{pairs[0].t, top_root,
                            scheme.table(pairs[0].t)
                                .own_label(*scheme.lookup(pairs[0].t,
                                                          top_root))};
  const FlatHeader top_eytz = [&] {
    FlatHeader h = router_eytz.prepare(pairs[0].s, pairs[0].t);
    const std::uint32_t idx = flat_eytz.find(pairs[0].t, top_root);
    h.tree_root = top_root;
    h.dfs_in = flat_eytz.own_dfs(idx);
    h.light = flat_eytz.own_light_ports(idx).data();
    h.light_len =
        static_cast<std::uint32_t>(flat_eytz.own_light_ports(idx).size());
    return h;
  }();
  const FlatHeader top_fks = [&] {
    FlatHeader h = top_eytz;
    const std::uint32_t idx = flat_fks.find(pairs[0].t, top_root);
    h.light = flat_fks.own_light_ports(idx).data();
    return h;
  }();

  bench::JsonReport report;
  report.set("experiment", std::string("micro_decision"))
      .set("family", std::string("er"))
      .set("n", std::uint64_t{n})
      .set("k", std::uint64_t{k})
      .set("pairs", std::uint64_t{num_pairs})
      .set("iters", iters)
      .set("seed", seed)
      .set("batch_group", std::uint64_t{batch_group})
      .set("preprocess_s", preprocess_s)
      .set("flat_compile_s", compile_s);
  bench::add_host_metadata(report);

  std::printf("%-28s %12s\n", "operation", "ns/op");
  const auto run = [&](const char* name, double ns) {
    std::printf("%-28s %12.1f\n", name, ns);
    report.add_row("ops").set("name", std::string(name)).set("ns_per_op", ns);
    return ns;
  };

  // --- source-side prepare ------------------------------------------------
  const double prep_legacy = run("prepare/legacy", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const TZHeader h = router.prepare(p.s, scheme.label(p.t));
    return std::uint64_t{h.tree_root} + h.tree_label.dfs_in;
  }));
  run("prepare/flat-eytzinger", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const FlatHeader h = router_eytz.prepare(p.s, p.t);
    return std::uint64_t{h.tree_root} + h.dfs_in;
  }));
  const double prep_fks = run("prepare/flat-fks", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const FlatHeader h = router_fks.prepare(p.s, p.t);
    return std::uint64_t{h.tree_root} + h.dfs_in;
  }));

  // --- handshake prepare --------------------------------------------------
  run("handshake/legacy", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const TZHeader h = router.prepare_handshake(p.s, p.t);
    return std::uint64_t{h.tree_root} + h.tree_label.dfs_in;
  }));
  run("handshake/flat-fks", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const FlatHeader h = router_fks.prepare_handshake(p.s, p.t);
    return std::uint64_t{h.tree_root} + h.dfs_in;
  }));

  // --- per-hop step (top-level tree: every vertex has the entry) ----------
  const double step_legacy = run("step/legacy-binsearch", measure_ns(iters, [&](std::uint64_t i) {
    const VertexId v = pair_at(i).s;
    const TreeDecision d = router.step(v, top_legacy);
    return std::uint64_t{d.port} + d.deliver;
  }));
  run("step/flat-eytzinger", measure_ns(iters, [&](std::uint64_t i) {
    const VertexId v = pair_at(i).s;
    const TreeDecision d = router_eytz.step(v, top_eytz);
    return std::uint64_t{d.port} + d.deliver;
  }));
  const double step_fks = run("step/flat-fks", measure_ns(iters, [&](std::uint64_t i) {
    const VertexId v = pair_at(i).s;
    const TreeDecision d = router_fks.step(v, top_fks);
    return std::uint64_t{d.port} + d.deliver;
  }));

  // --- the full source decision: prepare + first step ---------------------
  const double dec_legacy = run("decision/legacy", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const TZHeader h = router.prepare(p.s, scheme.label(p.t));
    const TreeDecision d = router.step(p.s, h);
    return std::uint64_t{h.tree_root} + d.port;
  }));
  const double dec_eytz =
      run("decision/flat-eytzinger", measure_ns(iters, [&](std::uint64_t i) {
        const PairSample& p = pair_at(i);
        const FlatHeader h = router_eytz.prepare(p.s, p.t);
        const TreeDecision d = router_eytz.step(p.s, h);
        return std::uint64_t{h.tree_root} + d.port;
      }));
  const double dec_fks = run("decision/flat-fks", measure_ns(iters, [&](std::uint64_t i) {
    const PairSample& p = pair_at(i);
    const FlatHeader h = router_fks.prepare(p.s, p.t);
    const TreeDecision d = router_fks.step(p.s, h);
    return std::uint64_t{h.tree_root} + d.port;
  }));

  // --- the serving op: prepare + the full per-hop walk to delivery,
  // scalar vs batch-pipelined. Per-hop decisions are load-dependent
  // within one query, so this is where interleaving G queries' descents
  // actually buys memory-level parallelism. ---------------------------------
  const std::uint32_t max_hops = 4 * n + 16;
  double route_decisions = 1;  // avg per-hop decisions per routed query
  const auto measure_route_scalar = [&](const FlatRouter& r) {
    const std::uint64_t rounds =
        std::max<std::uint64_t>(1, iters / (pairs.size() * 8));
    std::uint64_t sink = 0, steps = 0, queries = 0;
    const auto sweep = [&]() {
      for (const PairSample& p : pairs) {
        const FlatHeader h = r.prepare(p.s, p.t);
        VertexId here = p.s;
        std::uint32_t hops = 0;
        while (true) {
          const TreeDecision d = r.step(here, h);
          ++steps;
          if (d.deliver) break;
          here = g.arc(here, d.port).head;
          if (++hops >= max_hops) break;
        }
        sink += here;
        ++queries;
      }
    };
    sweep();  // warmup (counts reset below)
    steps = queries = 0;
    bench::Stopwatch sw;
    for (std::uint64_t r2 = 0; r2 < rounds; ++r2) sweep();
    const double ns = sw.seconds() * 1e9 / static_cast<double>(queries);
    route_decisions =
        static_cast<double>(steps) / static_cast<double>(queries);
    g_sink = g_sink + sink;
    return ns;
  };
  const auto measure_route_batched = [&](const FlatScheme& flat,
                                         std::uint32_t group) {
    FlatBatchTarget target;
    target.graph = &g;
    target.kind = FlatServeKind::kTZDirect;
    target.flat = &flat;
    FlatBatchEngine engine(group);
    std::vector<FlatBatchQuery> qs(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      qs[i] = FlatBatchQuery{pairs[i].s, pairs[i].t,
                             flat.label(pairs[i].t)};
    }
    std::vector<FlatBatchAnswer> as(pairs.size());
    const std::uint64_t rounds =
        std::max<std::uint64_t>(1, iters / (pairs.size() * 8));
    engine.route(target, qs, as);  // warmup
    bench::Stopwatch sw;
    std::uint64_t sink = 0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      engine.route(target, qs, as);
      sink += as[r % as.size()].hops;
    }
    const double ns = sw.seconds() * 1e9 /
                      (static_cast<double>(rounds) *
                       static_cast<double>(pairs.size()));
    g_sink = g_sink + sink;
    return ns;
  };
  const double route_eytz =
      run("route/flat-eytzinger", measure_route_scalar(router_eytz));
  const double route_eytz_batched = run(
      "route/flat-eytzinger-batched", measure_route_batched(flat_eytz,
                                                            batch_group));
  const double route_fks =
      run("route/flat-fks", measure_route_scalar(router_fks));
  const double route_fks_batched =
      run("route/flat-fks-batched", measure_route_batched(flat_fks,
                                                          batch_group));

  // --- G × ISA sweep: the batched route on every SIMD implementation
  // this binary+CPU supports, at each lane-group size. One row per
  // config; the best (by the gated Eytzinger route) lands in the
  // sweep_best_* scalars so the trajectory records which config the
  // headline should run at. --------------------------------------------------
  const double per_dec_sweep =
      route_decisions > 0 ? 1.0 / route_decisions : 0;
  const simd::Isa initial_isa = simd::selected();
  std::string best_isa;
  std::uint32_t best_group = 0;
  double best_eytz_ns = 0, best_fks_ns = 0;
  for (const simd::Isa isa : simd::compiled()) {
    if (!simd::available(isa)) continue;
    simd::force(isa);
    for (const std::uint32_t grp : {16u, 32u, 64u}) {
      const double eytz_ns = measure_route_batched(flat_eytz, grp);
      const double fks_ns = measure_route_batched(flat_fks, grp);
      char name[64];
      std::snprintf(name, sizeof name, "route/batched-%s-G%u",
                    simd::isa_name(isa), grp);
      std::printf("%-28s %12.1f  (fks %.1f)\n", name, eytz_ns, fks_ns);
      report.add_row("simd_sweep")
          .set("isa", std::string(simd::isa_name(isa)))
          .set("batch_group", std::uint64_t{grp})
          .set("eytzinger_route_ns", eytz_ns)
          .set("eytzinger_route_decision_ns", eytz_ns * per_dec_sweep)
          .set("fks_route_ns", fks_ns);
      if (best_group == 0 || eytz_ns < best_eytz_ns) {
        best_isa = simd::isa_name(isa);
        best_group = grp;
        best_eytz_ns = eytz_ns;
        best_fks_ns = fks_ns;
      }
    }
  }
  simd::force(initial_isa);
  report.set("sweep_best_isa", best_isa)
      .set("sweep_best_batch_group", std::uint64_t{best_group})
      .set("sweep_best_eytzinger_route_ns", best_eytz_ns)
      .set("sweep_best_eytzinger_route_decision_ns",
           best_eytz_ns * per_dec_sweep)
      .set("sweep_best_fks_route_ns", best_fks_ns);

  // --- baselines (preprocessing too heavy beyond a few thousand) ----------
  if (n <= 4096) {
    Rng orng(seed + 3), crng(seed + 4);
    DistanceOracle::Options oopt;
    oopt.k = k;
    const DistanceOracle oracle(g, oopt, orng);
    const CowenScheme cowen(g, crng);
    const FullTableScheme full(g);
    run("oracle/query", measure_ns(iters, [&](std::uint64_t i) {
      const PairSample& p = pair_at(i);
      return static_cast<std::uint64_t>(oracle.query(p.s, p.t));
    }));
    run("cowen/step", measure_ns(iters, [&](std::uint64_t i) {
      const PairSample& p = pair_at(i);
      const auto d = cowen.step(p.s, cowen.label(p.t));
      return std::uint64_t{d.port} + d.deliver;
    }));
    run("full/next-hop", measure_ns(iters, [&](std::uint64_t i) {
      const PairSample& p = pair_at(i);
      return std::uint64_t{full.next_hop(p.s, p.t)};
    }));
  }

  const double speedup = dec_fks > 0 ? dec_legacy / dec_fks : 0;
  const double speedup_eytz = dec_eytz > 0 ? dec_legacy / dec_eytz : 0;
  const double batched_speedup_eytz =
      route_eytz_batched > 0 ? route_eytz / route_eytz_batched : 0;
  const double batched_speedup_fks =
      route_fks_batched > 0 ? route_fks / route_fks_batched : 0;
  const double per_dec =
      route_decisions > 0 ? 1.0 / route_decisions : 0;
  std::printf("----------------------------------------------\n");
  std::printf("legacy decision %.1f ns, flat %.1f ns (fks) / %.1f ns "
              "(eytzinger): %.2fx / %.2fx\n",
              dec_legacy, dec_fks, dec_eytz, speedup, speedup_eytz);
  std::printf("route (%.1f decisions/query), batched G=%u: eytzinger "
              "%.1f -> %.1f ns/query (%.2fx, %.1f -> %.1f ns/decision), "
              "fks %.1f -> %.1f (%.2fx)\n",
              route_decisions, batch_group, route_eytz, route_eytz_batched,
              batched_speedup_eytz, route_eytz * per_dec,
              route_eytz_batched * per_dec, route_fks, route_fks_batched,
              batched_speedup_fks);
  report.set("legacy_decision_ns", dec_legacy)
      .set("flat_decision_ns", dec_fks)
      .set("flat_eytzinger_decision_ns", dec_eytz)
      .set("flat_route_ns", route_fks)
      .set("flat_eytzinger_route_ns", route_eytz)
      .set("flat_batched_route_ns", route_fks_batched)
      .set("flat_batched_eytzinger_route_ns", route_eytz_batched)
      .set("route_decisions_per_query", route_decisions)
      .set("flat_route_decision_ns", route_fks * per_dec)
      .set("flat_eytzinger_route_decision_ns", route_eytz * per_dec)
      .set("flat_batched_route_decision_ns", route_fks_batched * per_dec)
      .set("flat_batched_eytzinger_route_decision_ns",
           route_eytz_batched * per_dec)
      .set("flat_speedup", speedup)
      .set("flat_speedup_eytzinger", speedup_eytz)
      .set("batched_speedup", batched_speedup_fks)
      .set("batched_speedup_eytzinger", batched_speedup_eytz)
      .set("legacy_prepare_ns", prep_legacy)
      .set("flat_prepare_ns", prep_fks)
      .set("legacy_step_ns", step_legacy)
      .set("flat_step_ns", step_fks);
  if (!json_path.empty()) {
    report.write(json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

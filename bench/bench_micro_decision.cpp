/// \file bench_micro_decision.cpp
/// \brief Experiment micro — O(1) decision costs (google-benchmark).
///
/// Claim (SPAA'01): routing decisions are constant time — one table
/// lookup (hashed: O(1) worst case; binary-searched: O(log of a small
/// table)) plus an O(1) interval test. We measure the hot operations on
/// a prebuilt n=2048 scheme: per-hop step with binary search and with the
/// FKS index, source-side prepare (direct and handshake), the bare tree
/// decision, the oracle query, and the baselines' decision functions.
/// Accepts --seed=N (fixture reseed) ahead of google-benchmark's own flags.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/cowen.hpp"
#include "baseline/full_table.hpp"
#include "core/tz_router.hpp"
#include "core/tz_scheme.hpp"
#include "oracle/distance_oracle.hpp"
#include "sim/experiment.hpp"
#include "util/random.hpp"

namespace {

using namespace croute;

/// Base seed for the fixture, settable via --seed=N (every derived Rng
/// offsets from it, so one flag reseeds the whole fixture).
std::uint64_t g_seed = 42;

/// One lazily-built shared fixture: n=2048 ER graph plus every scheme.
struct Fixture {
  Graph g;
  TZScheme* plain;
  TZScheme* hashed;
  DistanceOracle* oracle;
  CowenScheme* cowen;
  FullTableScheme* full;
  std::vector<PairSample> pairs;

  static const Fixture& get() {
    static Fixture f = [] {
      Fixture x;
      Rng rng(g_seed);
      x.g = make_workload(GraphFamily::kErdosRenyi, 2048, rng);
      TZSchemeOptions opt;
      opt.pre.k = 3;
      Rng r1(g_seed + 1), r2(g_seed + 1), r3(g_seed + 2), r4(g_seed + 3);
      x.plain = new TZScheme(x.g, opt, r1);
      opt.hash_index = true;
      x.hashed = new TZScheme(x.g, opt, r2);
      DistanceOracle::Options oopt;
      oopt.k = 3;
      x.oracle = new DistanceOracle(x.g, oopt, r3);
      x.cowen = new CowenScheme(x.g, r4);
      x.full = new FullTableScheme(x.g);
      Rng prng(g_seed + 4);
      x.pairs = sample_pairs(x.g, 512, prng);
      return x;
    }();
    return f;
  }
};

void BM_TZPrepareDirect(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const TZRouter router(*f.plain);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(router.prepare(p.s, f.plain->label(p.t)));
  }
}
BENCHMARK(BM_TZPrepareDirect);

void BM_TZPrepareHandshake(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const TZRouter router(*f.plain);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(router.prepare_handshake(p.s, p.t));
  }
}
BENCHMARK(BM_TZPrepareHandshake);

void BM_TZStepBinarySearch(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const TZRouter router(*f.plain);
  const auto& p = f.pairs[0];
  const TZHeader h = router.prepare(p.s, f.plain->label(p.t));
  std::size_t i = 0;
  for (auto _ : state) {
    const VertexId v = f.pairs[i++ % f.pairs.size()].s;
    // Step in the top-level tree: every vertex holds an entry for it.
    TZHeader top = h;
    top.tree_root =
        f.plain->preprocessing().effective_pivot(2, h.tree_root);
    benchmark::DoNotOptimize(router.step(v, top));
  }
}
BENCHMARK(BM_TZStepBinarySearch);

void BM_TZStepHashed(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const TZRouter router(*f.hashed);
  const auto& p = f.pairs[0];
  const TZHeader h = router.prepare(p.s, f.hashed->label(p.t));
  std::size_t i = 0;
  for (auto _ : state) {
    const VertexId v = f.pairs[i++ % f.pairs.size()].s;
    TZHeader top = h;
    top.tree_root =
        f.hashed->preprocessing().effective_pivot(2, h.tree_root);
    benchmark::DoNotOptimize(router.step(v, top));
  }
}
BENCHMARK(BM_TZStepHashed);

void BM_TreeDecide(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  // A record/label pair from the top-level tree of the plain scheme.
  const auto& p = f.pairs[0];
  const VertexId root =
      f.plain->preprocessing().effective_pivot(2, p.t);
  const TableEntry* e = f.plain->lookup(p.s, root);
  const TableEntry* et = f.plain->lookup(p.t, root);
  const TreeLabel dest = f.plain->table(p.t).own_label(*et);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeRoutingScheme::decide(e->record, dest));
  }
}
BENCHMARK(BM_TreeDecide);

void BM_OracleQuery(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.oracle->query(p.s, p.t));
  }
}
BENCHMARK(BM_OracleQuery);

void BM_CowenStep(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.cowen->step(p.s, f.cowen->label(p.t)));
  }
}
BENCHMARK(BM_CowenStep);

void BM_FullTableNextHop(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.full->next_hop(p.s, p.t));
  }
}
BENCHMARK(BM_FullTableNextHop);

}  // namespace

// Custom main instead of BENCHMARK_MAIN: peel off --seed=N (google-benchmark
// rejects flags it does not know) before handing argv to the library.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      g_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// \file bench_t6_oracle.cpp
/// \brief Experiment T6 — the companion approximate distance oracle.
///
/// Claim (STOC'01 machinery that SPAA'01 §4 reuses; the routing handshake
/// *is* this query): estimates satisfy d ≤ est ≤ (2k−1)·d with
/// O(k·n^{1/k}) words per vertex. We sweep k on one graph, compare
/// measured approximation quality against the bound, and report per-vertex
/// space.

#include <cstdio>

#include "bench_common.hpp"
#include "oracle/distance_oracle.hpp"
#include "sim/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 6));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 4000));

  bench::banner("T6",
                "distance oracle: d <= estimate <= (2k-1) d, space "
                "~ k n^{1/k} words/vertex",
                "Erdos-Renyi largest component n ~ 4096 m ~ 4n; 4000 pairs; "
                "also a weighted variant");

  TextTable table({"weights", "k", "bound", "mean approx", "p99 approx",
                   "max approx", "avg bits/vertex", "avg bunch"});
  for (const bool weighted : {false, true}) {
    Rng rng(seed);
    const Graph g =
        make_workload(GraphFamily::kErdosRenyi, n, rng, weighted);
    const auto pairs = sample_pairs(g, num_pairs, rng);
    for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
      Rng orng(seed * 17 + k);
      DistanceOracle::Options opt;
      opt.k = k;
      const DistanceOracle oracle(g, opt, orng);
      Summary approx;
      {
        std::vector<double> ratios;
        ratios.reserve(pairs.size());
        for (const auto& p : pairs) {
          ratios.push_back(oracle.query(p.s, p.t) / p.exact);
        }
        approx = summarize(std::move(ratios));
      }
      double bunch_total = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        bunch_total += oracle.bunch_size(v);
      }
      table.row()
          .add(weighted ? "U[1,10)" : "unit")
          .add(static_cast<std::uint64_t>(k))
          .add(static_cast<std::uint64_t>(2 * k - 1))
          .add(approx.mean, 3)
          .add(approx.p99, 3)
          .add(approx.max, 3)
          .add(format_bits(static_cast<double>(oracle.total_bits()) /
                           g.num_vertices()))
          .add(bunch_total / g.num_vertices(), 1);
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: max approx <= 2k-1 for every k; space and "
              "bunch sizes shrink as k grows\n");
  return 0;
}

/// \file bench_a2_cap_factor.cpp
/// \brief Ablation A2 — the center() cluster-cap constant.
///
/// The paper fixes the cluster cap at 4n/s (cap factor 4). The factor
/// trades landmark count against cluster size: a tighter cap forces more
/// resampling rounds and a larger landmark set A₁ (more top-level trees
/// in every bunch), a looser cap admits bigger clusters (larger
/// directories). This ablation sweeps the factor on the k = 2 scheme and
/// reports |A₁|, the max cluster, max/avg table bits, and measured
/// stretch — showing the paper's choice sits at a flat spot of the
/// tradeoff (stretch is unaffected; only the space split moves).

#include <cstdio>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 12));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 1500));

  bench::banner("A2",
                "ablation: cluster-cap factor (paper: 4) — landmark count "
                "vs cluster size vs table bits at k=2",
                "Erdos-Renyi largest component n ~ 4096 m ~ 4n, same pairs "
                "per factor");

  Rng rng(seed);
  const Graph g = make_workload(GraphFamily::kErdosRenyi, n, rng);
  const Simulator sim(g);
  const auto pairs = sample_pairs(g, num_pairs, rng);

  TextTable table({"cap factor", "|A1|", "max cluster", "max table",
                   "avg table", "mean stretch", "max stretch"});
  for (const double factor : {1.5, 2.0, 4.0, 8.0, 16.0}) {
    Rng srng(seed * 43);
    TZSchemeOptions opt;
    opt.pre.k = 2;
    opt.pre.hierarchy.cap_factor = factor;
    const TZScheme scheme(g, opt, srng);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_tz(sim, scheme, s, t); });
    std::uint32_t max_cluster = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      max_cluster = std::max(max_cluster, scheme.directory(v).size());
    }
    table.row()
        .add(factor, 1)
        .add(static_cast<std::uint64_t>(
            scheme.preprocessing().hierarchy().level_size(1)))
        .add(static_cast<std::uint64_t>(max_cluster))
        .add(format_bits(static_cast<double>(scheme.max_table_bits())))
        .add(format_bits(static_cast<double>(scheme.total_table_bits()) /
                         g.num_vertices()))
        .add(rep.stretch.mean, 3)
        .add(rep.stretch.max, 3);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: |A1| falls and max cluster rises with the "
              "factor; stretch stays <= 3 throughout; total space is "
              "flattest near the paper's factor 4\n");
  return 0;
}

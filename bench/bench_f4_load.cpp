/// \file bench_f4_load.cpp
/// \brief Experiment F4 — the congestion price of compactness (extension).
///
/// Not a claim from the paper, but the standard follow-up question about
/// landmark routing: funneling traffic through pivot trees concentrates
/// load on the links around landmarks. We route the same uniform traffic
/// matrix under exact shortest-path forwarding and under TZ k = 2/3 and
/// compare the hottest link's load. The shape to expect: TZ's maximum
/// link load exceeds shortest-path routing's by a small factor — the
/// price paid for Õ(n^{1/k}) state — and the factor grows with k as
/// traffic funnels through fewer, higher-level trees.

#include <cstdio>

#include "baseline/full_table.hpp"
#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 14));
  const auto n = static_cast<VertexId>(flags.get_int("n", 2048));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 4000));

  bench::banner("F4",
                "extension: link-load concentration — the congestion "
                "price of landmark routing vs exact forwarding",
                "torus and Erdos-Renyi, n ~ 2048, 4000 uniform pairs; "
                "max/p99 link load and the concentration factor max/mean");

  TextTable table({"family", "scheme", "max load", "p99 load", "mean load",
                   "concentration", "used edges"});
  for (const GraphFamily family :
       {GraphFamily::kTorus, GraphFamily::kErdosRenyi}) {
    Rng rng(seed);
    const Graph g = make_workload(family, n, rng);
    const Simulator sim(g);
    const auto pairs = sample_pairs(g, num_pairs, rng);

    auto add_row = [&](const char* name, const LoadReport& rep) {
      table.row()
          .add(family_name(family))
          .add(name)
          .add(rep.max_load)
          .add(rep.p99_load, 0)
          .add(rep.mean_load, 1)
          .add(rep.concentration(), 1)
          .add(rep.used_edges);
    };

    {
      const FullTableScheme full(g);
      add_row("exact", measure_load(g, pairs, [&](VertexId s, VertexId t) {
                return route_full(sim, full, s, t);
              }));
    }
    for (const std::uint32_t k : {2u, 3u}) {
      Rng srng(seed * 47 + k);
      TZSchemeOptions opt;
      opt.pre.k = k;
      const TZScheme scheme(g, opt, srng);
      const std::string name = "tz k=" + std::to_string(k);
      add_row(name.c_str(),
              measure_load(g, pairs, [&](VertexId s, VertexId t) {
                return route_tz(sim, scheme, s, t);
              }));
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: tz max load >= exact max load, growing "
              "with k (fewer, hotter trees); mean load grows only with "
              "the stretch factor\n");
  return 0;
}

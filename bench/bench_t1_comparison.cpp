/// \file bench_t1_comparison.cpp
/// \brief Experiment T1 — the paper's comparison against prior art.
///
/// Claim (SPAA'01 §1, §3): at equal stretch ≤ 3, Thorup–Zwick tables are
/// Õ(√n) bits against Cowen's Õ(n^{2/3}); exact (stretch-1) routing costs
/// Θ(n log deg) bits per vertex — and by Gavoille–Gengler any stretch < 3
/// scheme must pay Ω(n) on some vertex, so the full table is the honest
/// representative of that regime.
///
/// For each n we build all three schemes on the same graph, route the same
/// sampled pairs, and report measured max/avg table bits and stretch. The
/// shape to check: all three stay within their stretch budgets, Cowen's
/// max-table exponent (≈ 2/3) visibly exceeds TZ's (≈ 1/2), and full
/// tables are 1–2 orders larger. Log-log slopes are fitted at the bottom.

#include <cstdio>
#include <vector>

#include "baseline/cowen.hpp"
#include "baseline/full_table.hpp"
#include "bench_common.hpp"
#include "core/stretch3.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace croute;

struct Row {
  const char* scheme;
  double n;
  double max_table;
  double avg_table;
  double max_entries;
  double label;
  double mean_stretch;
  double max_stretch;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto pairs_per_n =
      static_cast<std::uint32_t>(flags.get_int("pairs", 1500));
  const double scale = flags.get_double("scale", 1.0);

  bench::banner(
      "T1",
      "stretch-3 comparison: TZ k=2 (sqrt-n tables) vs Cowen (n^{2/3}) vs "
      "full tables (stretch 1, Omega(n))",
      "Erdos-Renyi largest component, m ~ 4n, unit weights; identical "
      "graphs and query pairs per scheme");

  std::vector<VertexId> sizes;
  for (const VertexId n : {512u, 1024u, 2048u, 4096u, 8192u}) {
    sizes.push_back(static_cast<VertexId>(n * scale));
  }

  TextTable table({"scheme", "n", "max table", "avg table", "max entries",
                   "label", "stretch(avg)", "stretch(max)"});
  std::vector<Row> rows;

  for (const VertexId n : sizes) {
    Rng rng(seed + n);
    const Graph g = make_workload(GraphFamily::kErdosRenyi, n, rng);
    const Simulator sim(g);
    const auto pairs = sample_pairs(g, pairs_per_n, rng);
    const auto nv = g.num_vertices();

    {  // Thorup–Zwick k=2 (this paper).
      Rng srng(seed * 3 + n);
      const Stretch3Scheme s3(g, srng);
      const TZScheme& scheme = s3.scheme();
      const StretchReport rep = measure_stretch(
          pairs,
          [&](VertexId s, VertexId t) { return route_tz(sim, scheme, s, t); });
      std::uint64_t lbl = 0, entries = 0;
      for (VertexId v = 0; v < nv; ++v) {
        lbl = std::max(lbl, scheme.label_bits(v));
        entries = std::max<std::uint64_t>(
            entries, scheme.table(v).size() + scheme.directory(v).size());
      }
      rows.push_back({"tz-k2", static_cast<double>(nv),
                      static_cast<double>(scheme.max_table_bits()),
                      static_cast<double>(scheme.total_table_bits()) / nv,
                      static_cast<double>(entries), static_cast<double>(lbl),
                      rep.stretch.mean, rep.stretch.max});
    }
    {  // Cowen stretch-3 baseline.
      Rng srng(seed * 5 + n);
      const CowenScheme cowen(g, srng);
      const StretchReport rep =
          measure_stretch(pairs, [&](VertexId s, VertexId t) {
            return route_cowen(sim, cowen, s, t);
          });
      std::uint64_t max_bits = 0, total = 0, entries = 0;
      const auto cluster_sizes = cowen.cluster_sizes();
      for (VertexId v = 0; v < nv; ++v) {
        max_bits = std::max(max_bits, cowen.table_bits(v));
        total += cowen.table_bits(v);
        entries = std::max<std::uint64_t>(
            entries, cowen.landmarks().size() + cluster_sizes[v]);
      }
      rows.push_back({"cowen", static_cast<double>(nv),
                      static_cast<double>(max_bits),
                      static_cast<double>(total) / nv,
                      static_cast<double>(entries),
                      static_cast<double>(cowen.label_bits()),
                      rep.stretch.mean, rep.stretch.max});
    }
    {  // Full shortest-path tables (stretch-1 anchor).
      const FullTableScheme full(g);
      const StretchReport rep =
          measure_stretch(pairs, [&](VertexId s, VertexId t) {
            return route_full(sim, full, s, t);
          });
      std::uint64_t max_bits = 0, total = 0;
      for (VertexId v = 0; v < nv; ++v) {
        max_bits = std::max(max_bits, full.table_bits(v));
        total += full.table_bits(v);
      }
      rows.push_back({"full-table", static_cast<double>(nv),
                      static_cast<double>(max_bits),
                      static_cast<double>(total) / nv,
                      static_cast<double>(nv - 1),
                      static_cast<double>(full.label_bits()),
                      rep.stretch.mean, rep.stretch.max});
    }
  }

  for (const Row& r : rows) {
    table.row()
        .add(r.scheme)
        .add(static_cast<std::uint64_t>(r.n))
        .add(format_bits(r.max_table))
        .add(format_bits(r.avg_table))
        .add(static_cast<std::uint64_t>(r.max_entries))
        .add(format_bits(r.label))
        .add(r.mean_stretch, 3)
        .add(r.max_stretch, 3);
  }
  std::printf("%s", table.to_string().c_str());

  // Scaling exponents (the paper's headline axis), in bits and entries.
  for (const char* scheme : {"tz-k2", "cowen", "full-table"}) {
    std::vector<double> xs, bits, entries;
    for (const Row& r : rows) {
      if (std::string(r.scheme) == scheme) {
        xs.push_back(r.n);
        bits.push_back(r.max_table);
        entries.push_back(r.max_entries);
      }
    }
    std::printf(
        "max-table scaling exponent %-11s : %.3f (bits), %.3f (entries)\n",
        scheme, fit_loglog_slope(xs, bits), fit_loglog_slope(xs, entries));
  }
  std::printf(
      "expected shape: tz-k2 ~ 0.5 (+polylog), cowen ~ 0.67, full-table ~ "
      "1.0; all stretch(max) <= 3. TZ's per-entry constant is ~20x "
      "Cowen's (tree records vs bare ports), so the bit crossover lies "
      "above this n range while the exponents already separate cleanly.\n");
  return 0;
}

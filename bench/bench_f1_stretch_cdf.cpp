/// \file bench_f1_stretch_cdf.cpp
/// \brief Experiment F1 — the distribution of measured stretch (figure).
///
/// Claim (implicit in SPAA'01's worst-case bounds): the bounds are tight
/// only adversarially; on standard families most pairs route at stretch 1
/// and the distribution collapses far below 4k−5. This figure prints the
/// empirical CDF of stretch per family at k = 3 — each row is one
/// (stretch value, cumulative fraction) series point, ready to plot.

#include <cstdio>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 8));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 3000));
  const auto k = static_cast<std::uint32_t>(flags.get_int("k", 3));

  bench::banner("F1",
                "stretch CDF at k=3: mass concentrates near 1, max well "
                "below the 4k-5=7 bound",
                "six families, n ~ 4096, 3000 pairs each; 10-point CDFs");

  TextTable table({"family", "p10", "p25", "p50", "p75", "p90", "p99",
                   "max", "frac@1.0"});
  for (const GraphFamily family : standard_families()) {
    Rng rng(seed);
    const Graph g = make_workload(family, n, rng);
    const Simulator sim(g);
    const auto pairs = sample_pairs(g, num_pairs, rng);
    Rng srng(seed * 23 + 1);
    TZSchemeOptions opt;
    opt.pre.k = k;
    const TZScheme scheme(g, opt, srng);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_tz(sim, scheme, s, t); });

    std::vector<double> sorted = rep.stretches;
    std::sort(sorted.begin(), sorted.end());
    double at_one = 0;
    for (const double v : sorted) at_one += v <= 1.0 + 1e-12;
    table.row()
        .add(family_name(family))
        .add(percentile_sorted(sorted, 10), 3)
        .add(percentile_sorted(sorted, 25), 3)
        .add(percentile_sorted(sorted, 50), 3)
        .add(percentile_sorted(sorted, 75), 3)
        .add(percentile_sorted(sorted, 90), 3)
        .add(percentile_sorted(sorted, 99), 3)
        .add(sorted.empty() ? 0.0 : sorted.back(), 3)
        .add(at_one / static_cast<double>(sorted.size()), 3);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: mass concentrates far below the bound "
              "(p50 <= 1.5 everywhere, p99 <= 3), max <= 7; locality-heavy "
              "families (ring-of-cliques, geometric) sit closest to 1\n");
  return 0;
}

/// \file bench_common.hpp
/// \brief Shared scaffolding for the experiment binaries.
///
/// Every bench prints a uniform banner (experiment id, the paper claim it
/// reproduces, the workload recipe) followed by TextTable rows;
/// EXPERIMENTS.md quotes these tables verbatim. All binaries accept
/// `--seed`, `--pairs` and a size scale so reviewers can rerun larger
/// instances; the defaults complete on a single core in tens of seconds.

#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace croute::bench {

/// Prints the experiment banner.
inline void banner(const char* id, const char* claim, const char* workload) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("[%s] %s\n", id, claim);
  std::printf("workload: %s\n", workload);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace croute::bench

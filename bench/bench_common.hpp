/// \file bench_common.hpp
/// \brief Shared scaffolding for the experiment binaries.
///
/// Every bench prints a uniform banner (experiment id, the paper claim it
/// reproduces, the workload recipe) followed by TextTable rows;
/// EXPERIMENTS.md quotes these tables verbatim. All binaries accept
/// `--seed`, `--pairs` and a size scale so reviewers can rerun larger
/// instances; the defaults complete on a single core in tens of seconds.
///
/// Benches that track a trajectory across PRs additionally accept
/// `--json out.json` and dump their headline numbers through JsonReport —
/// a deliberately tiny writer (flat object of scalars plus arrays of flat
/// objects) so results land in version-controllable BENCH_*.json files
/// without pulling in a JSON library.

#pragma once

#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "simd/simd.hpp"

namespace croute::bench {

/// Prints the experiment banner.
inline void banner(const char* id, const char* claim, const char* workload) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("[%s] %s\n", id, claim);
  std::printf("workload: %s\n", workload);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Machine-readable results: an insertion-ordered flat JSON object whose
/// values are numbers, strings, or arrays of flat objects ("rows").
class JsonReport {
 public:
  JsonReport& set(const std::string& key, double value) {
    scalars_.emplace_back(key, number(value));
    return *this;
  }
  JsonReport& set(const std::string& key, std::uint64_t value) {
    scalars_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& set(const std::string& key, int value) {
    scalars_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& set(const std::string& key, const std::string& value) {
    scalars_.emplace_back(key, quote(value));
    return *this;
  }

  /// One row of the array named \p array_key (created on first use;
  /// arrays render after the scalars, in first-use order). Returned
  /// references stay valid across later add_row calls (deque-backed), so
  /// rows may be filled incrementally across statements.
  class Row {
   public:
    Row& set(const std::string& key, double value) {
      fields_.emplace_back(key, number(value));
      return *this;
    }
    Row& set(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& set(const std::string& key, int value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& add_row(const std::string& array_key) {
    for (auto& [name, rows] : arrays_) {
      if (name == array_key) {
        rows.emplace_back();
        return rows.back();
      }
    }
    arrays_.emplace_back(array_key, std::deque<Row>{});
    arrays_.back().second.emplace_back();
    return arrays_.back().second.back();
  }

  /// Serializes the report (pretty-printed, stable order).
  std::string dump() const {
    std::string out = "{\n";
    bool first = true;
    for (const auto& [key, value] : scalars_) {
      if (!first) out += ",\n";
      first = false;
      out += "  " + quote(key) + ": " + value;
    }
    for (const auto& [key, rows] : arrays_) {
      if (!first) out += ",\n";
      first = false;
      out += "  " + quote(key) + ": [\n";
      for (std::size_t r = 0; r < rows.size(); ++r) {
        out += "    {";
        for (std::size_t f = 0; f < rows[r].fields_.size(); ++f) {
          if (f > 0) out += ", ";
          out += quote(rows[r].fields_[f].first) + ": " +
                 rows[r].fields_[f].second;
        }
        out += r + 1 < rows.size() ? "},\n" : "}\n";
      }
      out += "  ]";
    }
    out += "\n}\n";
    return out;
  }

  /// Writes dump() to \p path; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const {
    std::ofstream os(path, std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open " + path);
    os << dump();
    if (!os) throw std::runtime_error("failed writing " + path);
  }

 private:
  static std::string number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::pair<std::string, std::string>> scalars_;
  std::deque<std::pair<std::string, std::deque<Row>>> arrays_;
};

/// Stamps host metadata into \p report (host_cores, host_compiler,
/// host_build_flags): the BENCH_*.json trajectory spans machines — dev
/// container, CI runners, contributors' laptops — and absolute ns/qps
/// numbers are only interpretable next to the hardware and build that
/// produced them. CROUTE_BUILD_FLAGS is injected by CMakeLists.txt for
/// bench targets; a build outside CMake reports "unknown".
inline void add_host_metadata(JsonReport& report) {
  report.set("host_cores",
             std::uint64_t{std::thread::hardware_concurrency()});
#if defined(__clang__)
  report.set("host_compiler", std::string("clang ") + __VERSION__);
#elif defined(__GNUC__)
  report.set("host_compiler", std::string("gcc ") + __VERSION__);
#else
  report.set("host_compiler", std::string("unknown"));
#endif
#ifdef CROUTE_BUILD_FLAGS
  report.set("host_build_flags", std::string(CROUTE_BUILD_FLAGS));
#else
  report.set("host_build_flags", std::string("unknown"));
#endif
  // The SIMD implementation the run dispatched to (honors CROUTE_SIMD /
  // force()): a 55 ns decision on avx2 and a 70 ns one on generic are
  // different experiments, so the trajectory files must say which ran.
  report.set("host_simd_isa", std::string(simd::ops().name));
}

/// Parses and validates a `--batch-group N` value: the pipeline group
/// size must be a power of two (the sweep grid is 16/32/64; any power of
/// two is accepted) or 0 for the scalar path where the caller supports
/// it. Throws std::runtime_error with a message naming the flag.
inline std::uint32_t parse_batch_group(const std::string& value,
                                       bool allow_zero = true) {
  std::size_t used = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  const bool numeric = used == value.size() && !value.empty();
  const bool zero_ok = allow_zero && parsed == 0;
  const bool pow2 =
      parsed > 0 && parsed <= 4096 && (parsed & (parsed - 1)) == 0;
  if (!numeric || !(zero_ok || pow2)) {
    throw std::runtime_error(
        "--batch-group expects a power of two (e.g. 16, 32, 64)" +
        std::string(allow_zero ? " or 0 for the scalar path" : "") +
        ", got '" + value + "'");
  }
  return static_cast<std::uint32_t>(parsed);
}

}  // namespace croute::bench

/// \file bench_f3_handshake.cpp
/// \brief Experiment F3 — what the handshake buys (figure).
///
/// Claim (SPAA'01 §4): one preliminary source↔destination exchange
/// (running the distance-oracle walk) improves the stretch guarantee from
/// 4k−5 to 2k−1. We route the same pairs both ways and report the
/// distribution of the per-pair ratio direct/handshake plus the fraction
/// of pairs where the handshake strictly shortened the route.

#include <cstdio>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 10));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 2500));

  bench::banner("F3",
                "handshake improves 4k-5 to 2k-1: per-pair route-length "
                "ratio direct/handshake",
                "Erdos-Renyi and ring-of-cliques, n ~ 4096; same pairs both "
                "modes");

  TextTable table({"family", "k", "mean ratio", "p99 ratio", "max ratio",
                   "improved%", "max direct", "max handshake"});
  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kRingOfCliques}) {
    Rng rng(seed);
    const Graph g = make_workload(family, n, rng);
    const Simulator sim(g);
    const auto pairs = sample_pairs(g, num_pairs, rng);
    for (const std::uint32_t k : {3u, 4u, 5u}) {
      Rng srng(seed * 37 + k);
      TZSchemeOptions opt;
      opt.pre.k = k;
      const TZScheme scheme(g, opt, srng);
      std::vector<double> ratios;
      ratios.reserve(pairs.size());
      double improved = 0;
      double max_direct = 0, max_hs = 0;
      for (const auto& p : pairs) {
        const RouteResult d = route_tz(sim, scheme, p.s, p.t);
        const RouteResult h = route_tz_handshake(sim, scheme, p.s, p.t);
        ratios.push_back(d.length / h.length);
        improved += d.length > h.length + 1e-12;
        max_direct = std::max(max_direct, d.length / p.exact);
        max_hs = std::max(max_hs, h.length / p.exact);
      }
      const Summary summary = summarize(ratios);
      table.row()
          .add(family_name(family))
          .add(static_cast<std::uint64_t>(k))
          .add(summary.mean, 3)
          .add(summary.p99, 3)
          .add(summary.max, 3)
          .add(100.0 * improved / static_cast<double>(pairs.size()), 1)
          .add(max_direct, 3)
          .add(max_hs, 3);
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: ratios >= 1 in aggregate (handshake "
              "dominates), max handshake <= 2k-1 strictly below max "
              "direct's 4k-5 budget\n");
  return 0;
}

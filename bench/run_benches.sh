#!/usr/bin/env bash
# Runs the trajectory benches and writes BENCH_*.json at the repo root so
# the perf story is tracked PR over PR (ROADMAP: BENCH trajectory).
#
#   bench/run_benches.sh [build-dir]
#
# Expects a Release build (cmake -B build -S . && cmake --build build -j).
# Knobs via env: MICRO_ARGS / S1_ARGS / NET_ARGS are appended to the
# bench commands.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench_micro_decision" ]]; then
  echo "error: $build_dir/bench_micro_decision not built" >&2
  echo "hint: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# micro: per-decision cost, legacy vs flat, n=10k k=3 (the acceptance
# configuration — flat_speedup is the headline scalar).
"$build_dir/bench_micro_decision" \
    --json "$repo_root/BENCH_micro.json" ${MICRO_ARGS:-}

# S1: serving throughput, legacy vs flat at several thread counts, plus
# the churn mode — 3 background rebuild+swap cycles per thread count with
# qps-under-swap and swap-blackout telemetry (the hot-swap trajectory).
"$build_dir/bench_s1_throughput" \
    --n 10000 --queries 50000 --threads 1,2,4 --churn 3 \
    --json "$repo_root/BENCH_s1.json" ${S1_ARGS:-}

# NET: wire front-end under open-loop offered load — socket byte-identity,
# closed-loop saturation qps (the gated scalar), and the open-loop sweep
# where p99 sojourn at >=80% load exposes the queueing a closed loop hides.
"$build_dir/bench_net_openloop" \
    --n 10000 --queries 20000 --threads 2 --connections 4 \
    --loads 0.5,0.8,0.95 --duration 1.5 \
    --json "$repo_root/BENCH_net.json" ${NET_ARGS:-}

echo "wrote $repo_root/BENCH_micro.json, $repo_root/BENCH_s1.json and" \
     "$repo_root/BENCH_net.json"

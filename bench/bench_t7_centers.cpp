/// \file bench_t7_centers.cpp
/// \brief Experiment T7 — the center() guarantee vs plain sampling.
///
/// Claim (SPAA'01 §3 lemma): center(G, s) returns a landmark set of
/// expected size O(s log n) such that *every* remaining cluster has at
/// most 4n/s members — a worst-case bound, where i.i.d. (Bernoulli)
/// sampling of the same expected size only bounds the average and leaves
/// heavy-tailed graphs with huge outlier clusters (hence unbounded
/// routing tables; this is the paper's key fix over Cowen). We run both
/// samplers on an expander-like and a heavy-tailed graph and report
/// landmark counts and the cluster-size distribution against the cap.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/landmarks.hpp"
#include "sim/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto n_target = static_cast<VertexId>(flags.get_int("n", 4096));

  bench::banner("T7",
                "center() caps EVERY cluster at 4n/s; Bernoulli sampling "
                "of equal expected size does not",
                "Erdos-Renyi and Barabasi-Albert at n ~ 4096, s = sqrt(n), "
                "5 sampler seeds each");

  TextTable table({"family", "sampler", "|A| (avg)", "cap 4n/s",
                   "max cluster", "p99 cluster", "avg cluster",
                   "cap violations"});

  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kBarabasiAlbert}) {
    Rng graph_rng(seed);
    const Graph g = make_workload(family, n_target, graph_rng);
    const VertexId n = g.num_vertices();
    const double s = std::sqrt(static_cast<double>(n));
    const double cap = 4.0 * n / s;
    std::vector<VertexId> all(n);
    for (VertexId v = 0; v < n; ++v) all[v] = v;

    for (const bool centered : {true, false}) {
      double size_sum = 0;
      double max_cluster = 0, p99_sum = 0, avg_sum = 0;
      std::uint64_t violations = 0;
      const int trials = 5;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(seed * 19 + static_cast<std::uint64_t>(trial));
        const auto rank = rng.permutation(n);
        std::vector<VertexId> a;
        if (centered) {
          a = center_sample_level(g, all, s, cap, rank, rng);
        } else {
          const double p = s / static_cast<double>(n);
          for (VertexId v = 0; v < n; ++v) {
            if (rng.next_bernoulli(p)) a.push_back(v);
          }
          if (a.empty()) a.push_back(0);
        }
        size_sum += static_cast<double>(a.size());
        const auto sizes = exact_cluster_sizes(g, all, a, rank);
        std::vector<double> d;
        d.reserve(sizes.size());
        for (const auto c : sizes) d.push_back(c);
        const Summary summary = summarize(std::move(d));
        max_cluster = std::max(max_cluster, summary.max);
        p99_sum += summary.p99;
        avg_sum += summary.mean;
        for (const auto c : sizes) violations += c > cap;
      }
      table.row()
          .add(family_name(family))
          .add(centered ? "center()" : "bernoulli")
          .add(size_sum / trials, 1)
          .add(cap, 0)
          .add(max_cluster, 0)
          .add(p99_sum / trials, 0)
          .add(avg_sum / trials, 1)
          .add(violations);
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: center() rows have 0 violations always; "
              "bernoulli rows violate the cap (worst on barabasi-albert), "
              "at comparable |A|\n");
  return 0;
}

/// \file bench_a1_rule0_ablation.cpp
/// \brief Ablation A1 — what rule 0 (the cluster directory) buys.
///
/// DESIGN.md calls out the cluster directory as the step separating the
/// paper's 4k−5 guarantee from the easy 4k−3 of label-pivot-only routing.
/// This ablation routes the same pairs under both policies and reports
/// the measured stretch side by side, plus the directory's share of the
/// table bits — i.e. what the improvement costs in space.
///
/// At k = 2 the difference is categorical: with rule 0 the worst pair is
/// exactly 3; without it stretch-4 and stretch-5 pairs appear.

#include <cstdio>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 3000));

  bench::banner("A1",
                "ablation: rule 0 (cluster directory) improves 4k-3 to "
                "4k-5; measured stretch with and without it",
                "Erdos-Renyi and geometric, n ~ 4096, same pairs per "
                "policy; directory cost reported");

  TextTable table({"family", "k", "mean", "max", "mean(no rule0)",
                   "max(no rule0)", ">4k-5 pairs", "dir share%"});
  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kGeometric}) {
    Rng rng(seed);
    const Graph g = make_workload(family, n, rng);
    const Simulator sim(g);
    const auto pairs = sample_pairs(g, num_pairs, rng);
    for (const std::uint32_t k : {2u, 3u, 4u}) {
      Rng srng(seed * 41 + k);
      TZSchemeOptions opt;
      opt.pre.k = k;
      const TZScheme scheme(g, opt, srng);
      const StretchReport with = measure_stretch(
          pairs, [&](VertexId s, VertexId t) {
            return route_tz(sim, scheme, s, t, RoutingPolicy::kMinLevel);
          });
      const StretchReport without = measure_stretch(
          pairs, [&](VertexId s, VertexId t) {
            return route_tz(sim, scheme, s, t, RoutingPolicy::kLabelOnly);
          });
      std::uint64_t over_bound = 0;
      const double bound = 4.0 * k - 5.0;
      for (const double v : without.stretches) over_bound += v > bound + 1e-9;
      std::uint64_t dir_bits = 0, all_bits = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        dir_bits += scheme.directory(v).bit_size();
        all_bits += scheme.table_bits(v);
      }
      table.row()
          .add(family_name(family))
          .add(static_cast<std::uint64_t>(k))
          .add(with.stretch.mean, 3)
          .add(with.stretch.max, 3)
          .add(without.stretch.mean, 3)
          .add(without.stretch.max, 3)
          .add(over_bound)
          .add(100.0 * static_cast<double>(dir_bits) /
                   static_cast<double>(all_bits),
               1);
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: with rule 0, max <= 4k-5 always; without "
              "it, pairs above 4k-5 appear (k=2 shows stretch > 3) while "
              "still <= 4k-3; the directory costs a constant share of the "
              "table\n");
  return 0;
}

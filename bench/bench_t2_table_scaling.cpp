/// \file bench_t2_table_scaling.cpp
/// \brief Experiment T2 — routing tables scale as Õ(n^{1/k}).
///
/// Claim (SPAA'01 §4): with the center()-sampled hierarchy, every vertex's
/// routing table (bunch entries + cluster directory) holds
/// O(n^{1/k} log n) entries, i.e. Õ(n^{1/k}) bits. We sweep n for each k,
/// report max and average measured table bits, and fit the log-log slope
/// of the max table against n: it should sit near 1/k (slightly above due
/// to polylog factors; slightly below is also possible when the log
/// factor's growth flattens across the measured window).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  const auto max_n = static_cast<VertexId>(flags.get_int("max-n", 32768));

  bench::banner("T2",
                "per-vertex table size scales as n^{1/k} (times polylog)",
                "Erdos-Renyi largest component, m ~ 4n, unit weights");

  TextTable table({"k", "n", "max table", "avg table", "max entries",
                   "avg entries", "max label", "build(s)"});
  std::printf("(building up to n=%u on one core; --max-n to change)\n",
              max_n);

  for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
    std::vector<double> xs, ys;
    for (VertexId n = 1024; n <= max_n; n *= 2) {
      Rng rng(seed + n + k);
      const Graph g = make_workload(GraphFamily::kErdosRenyi, n, rng);
      bench::Stopwatch watch;
      Rng srng(seed * 7 + n + k);
      TZSchemeOptions opt;
      opt.pre.k = k;
      const TZScheme scheme(g, opt, srng);
      const double secs = watch.seconds();

      const auto nv = g.num_vertices();
      std::uint64_t max_bits = 0, total_bits = 0;
      std::uint64_t max_entries = 0, total_entries = 0, max_label = 0;
      for (VertexId v = 0; v < nv; ++v) {
        const std::uint64_t bits = scheme.table_bits(v);
        const std::uint64_t entries =
            scheme.table(v).size() + scheme.directory(v).size();
        max_bits = std::max(max_bits, bits);
        total_bits += bits;
        max_entries = std::max(max_entries, entries);
        total_entries += entries;
        max_label = std::max(max_label, scheme.label_bits(v));
      }
      table.row()
          .add(static_cast<std::uint64_t>(k))
          .add(static_cast<std::uint64_t>(nv))
          .add(format_bits(static_cast<double>(max_bits)))
          .add(format_bits(static_cast<double>(total_bits) / nv))
          .add(max_entries)
          .add(static_cast<double>(total_entries) / nv, 1)
          .add(format_bits(static_cast<double>(max_label)))
          .add(secs, 2);
      xs.push_back(nv);
      ys.push_back(static_cast<double>(max_bits));
    }
    std::printf("k=%u max-table log-log slope: %.3f (theory: %.3f + polylog)\n",
                k, fit_loglog_slope(xs, ys), 1.0 / k);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: slopes track 1/k; max/avg gap stays small "
              "(worst-case cap, not just average)\n");
  return 0;
}

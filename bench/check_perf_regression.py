#!/usr/bin/env python3
"""Perf-smoke regression gate over the micro-decision and S1 trajectories.

Compares fresh bench JSON against the committed baselines and fails
(exit 1) when a gated number regressed more than THRESHOLD times. The
threshold is deliberately generous (default 2x): shared CI runners are
noisy and the smoke instances are smaller than the committed ones (a
smaller instance can only make the fresh numbers FASTER, so a >2x
slowdown is a real regression, not noise).

Gated:
  - micro: every flat serving variant's ns/decision (scalar + batched);
  - S1 serving: qps of every flat run row (matched by threads);
  - S1 churn: per-cycle rebuild seconds — each fresh churn row gates
    against the committed FULL-rebuild row at the same thread count, so
    the incremental path must stay at least as fast as the committed
    full-rebuild baseline (and a regression of the full path itself
    fails the same gate);
  - NET serving: the wire front-end's served qps (the closed-loop
    saturation scalar of BENCH_net.json) — the whole socket pipeline
    (framing, decode, coalescing, route, encode) gates as one number.
    The byte-identity marker must also still read "yes".

Usage:
  check_perf_regression.py <micro_baseline> <micro_fresh> [threshold]
                           [--s1 <s1_baseline> <s1_fresh>]
                           [--net <net_baseline> <net_fresh>]
"""

import json
import sys

# Every flat serving variant the micro trajectory tracks: scalar
# decisions in both lookup layouts, and the route-level scalar vs
# batch-pipelined numbers the batched engine is judged by.
GATED_MICRO_KEYS = [
    "flat_decision_ns",
    "flat_eytzinger_decision_ns",
    "flat_route_ns",
    "flat_eytzinger_route_ns",
    "flat_batched_route_ns",
    "flat_batched_eytzinger_route_ns",
]


def load(path):
    with open(path) as f:
        return json.load(f)


def gate_micro(baseline, fresh, threshold, failures):
    for key in GATED_MICRO_KEYS:
        if key not in baseline:
            # A newly added variant has no committed baseline yet; it
            # starts gating on the next regeneration.
            print(f"  skip micro/{key}: not in baseline")
            continue
        if key not in fresh:
            failures.append(f"micro/{key}: missing from fresh measurement")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        ratio = now / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > threshold else "ok"
        print(f"  {verdict} micro/{key}: baseline {base:.1f} ns, fresh "
              f"{now:.1f} ns ({ratio:.2f}x, limit {threshold:.1f}x)")
        if ratio > threshold:
            failures.append(
                f"micro/{key}: {now:.1f} ns vs baseline {base:.1f} ns "
                f"({ratio:.2f}x > {threshold:.1f}x)")


def gate_s1_serving(baseline, fresh, threshold, failures):
    fresh_flat = {int(r["threads"]): float(r["qps"])
                  for r in fresh.get("runs", []) if r.get("path") == "flat"}
    for row in baseline.get("runs", []):
        if row.get("path") != "flat":
            continue
        threads = int(row["threads"])
        if threads not in fresh_flat:
            print(f"  skip s1/qps@{threads}t: not measured fresh")
            continue
        base, now = float(row["qps"]), fresh_flat[threads]
        ratio = base / now if now > 0 else float("inf")  # slowdown factor
        verdict = "FAIL" if ratio > threshold else "ok"
        print(f"  {verdict} s1/qps@{threads}t: baseline {base:.0f}, fresh "
              f"{now:.0f} ({ratio:.2f}x slowdown, limit {threshold:.1f}x)")
        if ratio > threshold:
            failures.append(
                f"s1/qps@{threads}t: {now:.0f} qps vs baseline {base:.0f} "
                f"({ratio:.2f}x slowdown > {threshold:.1f}x)")


def rebuild_per_cycle(row):
    swaps = int(row.get("swaps", 0))
    return float(row["rebuild_s"]) / swaps if swaps > 0 else float("inf")


def gate_s1_churn(baseline, fresh, threshold, failures):
    # Committed full-rebuild rows are the yardstick. Rows from before the
    # rebuild-mode split carry no "rebuild" marker and count as full.
    base_full = {int(r["threads"]): rebuild_per_cycle(r)
                 for r in baseline.get("churn_runs", [])
                 if r.get("rebuild", "full") == "full"}
    if not base_full:
        print("  skip s1/churn: baseline has no full-rebuild churn rows")
        return
    for row in fresh.get("churn_runs", []):
        threads = int(row["threads"])
        if threads not in base_full:
            print(f"  skip s1/churn@{threads}t: no baseline row")
            continue
        mode = row.get("rebuild", "full")
        base, now = base_full[threads], rebuild_per_cycle(row)
        ratio = now / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > threshold else "ok"
        print(f"  {verdict} s1/churn@{threads}t[{mode}]: "
              f"{now:.3f} s/cycle vs full baseline {base:.3f} "
              f"({ratio:.2f}x, limit {threshold:.1f}x)")
        if ratio > threshold:
            failures.append(
                f"s1/churn@{threads}t[{mode}]: {now:.3f} s/cycle vs "
                f"committed full baseline {base:.3f} "
                f"({ratio:.2f}x > {threshold:.1f}x)")


def gate_net(baseline, fresh, threshold, failures):
    if "saturation_qps" not in baseline:
        print("  skip net/saturation_qps: not in baseline")
    elif "saturation_qps" not in fresh:
        failures.append("net/saturation_qps: missing from fresh measurement")
    else:
        base = float(baseline["saturation_qps"])
        now = float(fresh["saturation_qps"])
        ratio = base / now if now > 0 else float("inf")  # slowdown factor
        verdict = "FAIL" if ratio > threshold else "ok"
        print(f"  {verdict} net/saturation_qps: baseline {base:.0f}, fresh "
              f"{now:.0f} ({ratio:.2f}x slowdown, limit {threshold:.1f}x)")
        if ratio > threshold:
            failures.append(
                f"net/saturation_qps: {now:.0f} qps vs baseline {base:.0f} "
                f"({ratio:.2f}x slowdown > {threshold:.1f}x)")
    # Not a perf number, but the cheapest place to keep the contract
    # loud: socket answers must stay byte-identical to in-process ones.
    if fresh.get("socket_identical", "yes") != "yes":
        failures.append("net/socket_identical: fresh run answered "
                        "differently over the socket than in-process")


def extract_pair(args, flag):
    if flag not in args:
        return args, None
    i = args.index(flag)
    pair = args[i + 1:i + 3]
    if len(pair) != 2:
        print(__doc__)
        sys.exit(2)
    return args[:i] + args[i + 3:], pair


def main() -> int:
    args = sys.argv[1:]
    args, s1_paths = extract_pair(args, "--s1")
    args, net_paths = extract_pair(args, "--net")
    if len(args) < 2:
        print(__doc__)
        return 2
    threshold = float(args[2]) if len(args) > 2 else 2.0

    failures = []
    gate_micro(load(args[0]), load(args[1]), threshold, failures)
    if s1_paths is not None:
        s1_baseline, s1_fresh = load(s1_paths[0]), load(s1_paths[1])
        gate_s1_serving(s1_baseline, s1_fresh, threshold, failures)
        gate_s1_churn(s1_baseline, s1_fresh, threshold, failures)
    if net_paths is not None:
        gate_net(load(net_paths[0]), load(net_paths[1]), threshold, failures)

    if failures:
        print("perf regression gate FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf-smoke regression gate over the micro-decision trajectory.

Compares a fresh BENCH_micro.json against the committed baseline and
fails (exit 1) when any flat-path variant is more than THRESHOLD times
slower than the committed number. The threshold is deliberately generous
(default 2x): shared CI runners are noisy and the smoke instance is
smaller than the committed one (a smaller instance can only make the
fresh numbers FASTER, so a >2x slowdown is a real regression, not noise).

Usage: check_perf_regression.py <baseline.json> <fresh.json> [threshold]
"""

import json
import sys

# Every flat serving variant the trajectory tracks: scalar decisions in
# both lookup layouts, and the route-level scalar vs batch-pipelined
# numbers the batched engine is judged by.
GATED_KEYS = [
    "flat_decision_ns",
    "flat_eytzinger_decision_ns",
    "flat_route_ns",
    "flat_eytzinger_route_ns",
    "flat_batched_route_ns",
    "flat_batched_eytzinger_route_ns",
]


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0

    failures = []
    for key in GATED_KEYS:
        if key not in baseline:
            # A newly added variant has no committed baseline yet; it
            # starts gating on the next regeneration.
            print(f"  skip {key}: not in baseline")
            continue
        if key not in fresh:
            failures.append(f"{key}: missing from fresh measurement")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        ratio = now / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > threshold else "ok"
        print(f"  {verdict} {key}: baseline {base:.1f} ns, fresh {now:.1f} ns"
              f" ({ratio:.2f}x, limit {threshold:.1f}x)")
        if ratio > threshold:
            failures.append(
                f"{key}: {now:.1f} ns vs baseline {base:.1f} ns "
                f"({ratio:.2f}x > {threshold:.1f}x)")

    if failures:
        print("perf regression gate FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

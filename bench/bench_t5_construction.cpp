/// \file bench_t5_construction.cpp
/// \brief Experiment T5 — preprocessing cost scaling.
///
/// Claim (SPAA'01): preprocessing is a polynomial, near-practical
/// computation — per level, one multi-source Dijkstra plus
/// cluster-restricted Dijkstras whose total settled mass is the total
/// cluster mass Σ|C(w)| = Õ(n^{1+1/k}). We time end-to-end scheme
/// construction across n and k and report seconds and the per-edge rate;
/// the log-log slope against n should sit near 1 + 1/k (slightly above
/// due to the log factors, below when Dijkstra constants dominate).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const auto max_n = static_cast<VertexId>(flags.get_int("max-n", 16384));

  bench::banner("T5",
                "preprocessing scales ~ n^{1+1/k} (total cluster mass); "
                "wall-clock on one core",
                "Erdos-Renyi largest component, m ~ 4n");

  TextTable table({"k", "n", "m", "build(s)", "us/edge", "cluster mass"});
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    std::vector<double> xs, ys;
    for (VertexId n = 2048; n <= max_n; n *= 2) {
      Rng rng(seed + n + k);
      const Graph g = make_workload(GraphFamily::kErdosRenyi, n, rng);
      bench::Stopwatch watch;
      Rng srng(seed * 13 + n + k);
      TZSchemeOptions opt;
      opt.pre.k = k;
      const TZScheme scheme(g, opt, srng);
      const double secs = watch.seconds();

      std::uint64_t mass = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        mass += scheme.table(v).size();  // Σ|B(v)| == Σ|C(w)|
      }
      table.row()
          .add(static_cast<std::uint64_t>(k))
          .add(static_cast<std::uint64_t>(g.num_vertices()))
          .add(g.num_edges())
          .add(secs, 2)
          .add(secs * 1e6 / static_cast<double>(g.num_edges()), 1)
          .add(mass);
      xs.push_back(g.num_vertices());
      ys.push_back(secs);
    }
    std::printf("k=%u build-time log-log slope: %.3f (theory ~ %.3f)\n", k,
                fit_loglog_slope(xs, ys), 1.0 + 1.0 / k);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: k=2 steepest (sqrt-n clusters), larger k "
              "flatter; mass ~ n^{1+1/k}\n");
  return 0;
}

/// \file bench_t4_tree_labels.cpp
/// \brief Experiment T4 — §2 tree routing: label sizes and correctness.
///
/// Claim (SPAA'01 §2): trees admit routing with labels of
/// (1+o(1))·log₂ n bits in the designer-port model and
/// O(log² n / log log n) bits in the fixed-port model, with O(1)-word
/// node state and constant decision time. We build both schemes on four
/// tree families across sizes, report exact measured label bits against
/// log₂ n, and spot-route pairs to confirm exactness (stretch 1 on the
/// unique tree path).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "tree/interval_router.hpp"
#include "tree/tree_router.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace croute;

Graph make_tree(const std::string& family, VertexId n, Rng& rng) {
  if (family == "random") return random_tree(n, rng);
  if (family == "path") return path_graph(n);
  if (family == "star") return star_graph(n);
  return balanced_tree(n, 2);  // "binary"
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));
  const auto max_n = static_cast<VertexId>(flags.get_int("max-n", 65536));

  bench::banner("T4",
                "tree labels: (1+o(1)) log2 n bits designer-port, "
                "O(log^2 n / loglog n) fixed-port; decisions O(1)",
                "random / path / star / balanced-binary trees");

  TextTable table({"family", "n", "log2(n)", "designer bits",
                   "fixed avg", "fixed max", "max light depth",
                   "spot stretch"});

  for (const std::string family : {"random", "path", "star", "binary"}) {
    for (VertexId n = 1024; n <= max_n; n *= 4) {
      Rng rng(seed + n);
      const Graph g = make_tree(family, n, rng);
      const LocalTree tree = make_local_tree(dijkstra(g, 0));
      const TreeRoutingScheme trs(tree);
      const IntervalTreeScheme its(tree);
      const TreeRoutingScheme::Codec codec(tree.size(), g.max_degree());

      std::uint64_t fixed_max = 0;
      double fixed_total = 0;
      std::uint32_t light_max = 0;
      for (std::uint32_t v = 0; v < trs.size(); ++v) {
        const std::uint64_t bits =
            TreeRoutingScheme::label_bits(trs.label(v), codec);
        fixed_max = std::max(fixed_max, bits);
        fixed_total += static_cast<double>(bits);
        light_max = std::max(
            light_max,
            static_cast<std::uint32_t>(trs.label(v).light_ports.size()));
      }

      // Spot-route 200 random pairs through the simulator: must be exact.
      const Simulator sim(g);
      double worst = 1.0;
      std::uint32_t bad = 0;
      for (int i = 0; i < 200; ++i) {
        const auto s = static_cast<std::uint32_t>(rng.next_below(n));
        const auto t = static_cast<std::uint32_t>(rng.next_below(n));
        const RouteResult r = route_tree(sim, tree, trs, s, t);
        if (!r.delivered()) {
          ++bad;
          continue;
        }
        if (s != t) {
          const auto ds = distances_from(g, tree.global[s]);
          worst = std::max(worst, r.length / ds[tree.global[t]]);
        }
      }

      table.row()
          .add(family)
          .add(static_cast<std::uint64_t>(n))
          .add(std::log2(static_cast<double>(n)), 1)
          .add(static_cast<std::uint64_t>(its.label_bits()))
          .add(fixed_total / trs.size(), 1)
          .add(fixed_max)
          .add(static_cast<std::uint64_t>(light_max))
          .add(bad == 0 ? std::to_string(worst).substr(0, 5)
                        : "FAIL(" + std::to_string(bad) + ")");
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "expected shape: designer bits == ceil(log2 n); fixed max grows ~ "
      "log^2 on binary trees, stays ~ log n on paths/stars; all spot "
      "stretches == 1.0\n");
  return 0;
}

/// \file bench_net_openloop.cpp
/// \brief Experiment NET — open-loop offered load against the wire front-end.
///
/// Claim: a closed-loop driver (send, wait, repeat) cannot see queueing
/// delay — its arrival rate adapts to the server, so latency percentiles
/// stay flat right up to saturation and then the driver simply slows
/// down. An open-loop driver offers load on a fixed schedule regardless
/// of completions (how real clients behave), so as offered load
/// approaches saturation the pending-batch queue grows and p99 *sojourn*
/// (scheduled-send → answer, queueing included) rises sharply above the
/// closed-loop p99 at the same throughput. The server's own
/// croute_queue_wait_us histogram must account for the gap: the extra
/// client-observed latency is time queued, not time served.
///
/// Phases (self-hosted mode):
///   1. byte-identity: answers over the socket == route_collect answers
///      computed before the server thread takes the driver role;
///   2. saturation: C closed-loop connections measure peak socket qps and
///      the closed-loop latency baseline;
///   3. sweep: open-loop points at --loads fractions of saturation; each
///      point reports offered vs achieved qps, sojourn p50/p95/p99, the
///      server-side queue-wait p99 over exactly that window (metrics
///      delta), and overload rejections.
///
/// Open-loop accounting is strict: frame i of a connection is *scheduled*
/// at start + i·interval, and its sojourn is measured from the schedule,
/// not from the (possibly later) send — if the socket back-pressures the
/// sender, that slip IS queueing delay and is charged to the answer.
///
/// Flags: shared serving flags (service/cli.hpp: --n --family --scheme
///        --threads --seed --workload ...), plus
///        --connections=C (parallel sockets, default 4)
///        --frame=Q (queries per QUERY frame, default 64)
///        --duration=S (seconds per measured point, default 1.5)
///        --loads=F,F,... (fractions of saturation, default .5,.8,.95)
///        --labels (address queries by wire label instead of vertex id)
///        --net-coalesce --net-max-pending (server admission control)
///        --connect=HOST:PORT (drive an external server; server-side
///        metrics phases are skipped) --verify (with --connect: build an
///        in-process twin from the same flags — preprocessing is seeded
///        and deterministic — and assert cross-process byte-identity)
///        --json out.json

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "service/cli.hpp"
#include "service/route_service.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace {

using namespace croute;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<double> parse_loads(const std::string& spec) {
  std::vector<double> loads;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double f = std::strtod(item.c_str(), nullptr);
    if (f > 0 && f < 2.0) loads.push_back(f);
  }
  if (loads.empty()) loads = {0.5, 0.8, 0.95};
  return loads;
}

/// The query stream one connection sends: wire queries (vertex- or
/// label-addressed) sliced into frames, cycled when exhausted. Label
/// storage is owned here so spans stay valid for the whole run.
struct WireTraffic {
  std::vector<net::WireQuery> queries;
  std::vector<net::OwnedLabel> labels;  // backing store for label spans

  std::span<const net::WireQuery> frame(std::uint64_t i,
                                        std::uint32_t size) const {
    const std::size_t start = (i * size) % queries.size();
    const std::size_t len = std::min<std::size_t>(size,
                                                  queries.size() - start);
    return {queries.data() + start, len};
  }
};

WireTraffic build_wire_traffic(const std::vector<RouteQuery>& traffic,
                               net::NetClient* label_source) {
  WireTraffic wt;
  wt.queries.reserve(traffic.size());
  if (label_source != nullptr) {
    std::vector<VertexId> targets(traffic.size());
    for (std::size_t i = 0; i < traffic.size(); ++i) targets[i] = traffic[i].t;
    wt.labels = label_source->fetch_labels(targets);
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      wt.queries.push_back({traffic[i].s, kNoVertex, wt.labels[i].bytes,
                            wt.labels[i].bits});
    }
  } else {
    for (const RouteQuery& q : traffic) {
      wt.queries.push_back({q.s, q.t, {}, 0});
    }
  }
  return wt;
}

/// What one measured point produced, merged over all connections.
struct PointResult {
  double wall_s = 0;
  std::uint64_t answered = 0;  ///< queries answered
  std::uint64_t errors = 0;    ///< ERROR frames (overload/malformed)
  std::vector<double> sojourn_us;

  double qps() const { return wall_s > 0 ? answered / wall_s : 0; }
};

/// One closed-loop connection: send a frame, block for its answer,
/// repeat. The arrival rate adapts to the server — the classic loop.
void closed_loop_conn(const std::string& host, std::uint16_t port,
                      const WireTraffic& wt, bool labeled,
                      std::uint32_t frame, double duration_s,
                      PointResult& out) {
  net::NetClient client;
  client.connect(host, port);
  const std::uint64_t start = now_ns();
  const auto deadline =
      start + static_cast<std::uint64_t>(duration_s * 1e9);
  std::uint64_t i = 0;
  while (now_ns() < deadline) {
    const auto slice = wt.frame(i++, frame);
    const std::uint64_t t0 = now_ns();
    try {
      const std::vector<net::WireAnswer> answers =
          client.query(slice, labeled);
      const double rtt_us = static_cast<double>(now_ns() - t0) / 1000.0;
      out.answered += answers.size();
      // Every query in the frame shares the frame's round trip.
      out.sojourn_us.insert(out.sojourn_us.end(), answers.size(), rtt_us);
    } catch (const std::runtime_error&) {
      out.errors += 1;
    }
  }
  out.wall_s = static_cast<double>(now_ns() - start) / 1e9;
}

/// One open-loop connection: a sender fires frames on a fixed schedule
/// (never waiting for answers) while a receiver drains ANSWER frames and
/// charges each query the time from its frame's *scheduled* send. The
/// two threads share one socket through NetClient's split send/receive
/// paths.
void open_loop_conn(const std::string& host, std::uint16_t port,
                    const WireTraffic& wt, bool labeled, std::uint32_t frame,
                    double duration_s, double frame_interval_s,
                    PointResult& out) {
  net::NetClient client;
  client.connect(host, port);

  std::mutex mu;  // guards sched + the send path's req_id handoff
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint32_t>>
      sched;  // req_id -> (scheduled ns, query count)
  std::atomic<std::uint64_t> sent_frames{0};
  std::atomic<bool> sender_done{false};

  std::thread sender([&] {
    const std::uint64_t start = now_ns();
    const auto interval_ns =
        static_cast<std::uint64_t>(frame_interval_s * 1e9);
    const auto deadline =
        start + static_cast<std::uint64_t>(duration_s * 1e9);
    std::uint64_t i = 0;
    for (;;) {
      const std::uint64_t target = start + i * interval_ns;
      if (target >= deadline) break;
      while (now_ns() < target) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      const auto slice = wt.frame(i, frame);
      {
        // Lock spans the send so the receiver can never see an ANSWER
        // whose req_id is not in sched yet.
        std::lock_guard<std::mutex> lock(mu);
        const std::uint64_t req_id = client.send_query(slice, labeled);
        sched.emplace(req_id,
                      std::make_pair(target,
                                     static_cast<std::uint32_t>(
                                         slice.size())));
      }
      sent_frames.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
    sender_done.store(true, std::memory_order_release);
  });

  const std::uint64_t start = now_ns();
  std::uint64_t settled_frames = 0;
  int idle_polls = 0;
  net::Reply reply;
  for (;;) {
    const bool done = sender_done.load(std::memory_order_acquire);
    if (done && settled_frames >= sent_frames.load()) break;
    if (!client.try_read_reply(reply, 100)) {
      if (client.eof()) break;
      // Drain grace after the sender stops: answers for the last frames
      // are still in flight; give the server a bounded window.
      if (done && ++idle_polls > 20) break;
      continue;
    }
    idle_polls = 0;
    const std::uint64_t arrival = now_ns();
    if (reply.type == static_cast<std::uint8_t>(net::FrameType::kAnswer) ||
        reply.type == static_cast<std::uint8_t>(net::FrameType::kError)) {
      std::uint64_t scheduled = 0;
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = sched.find(reply.req_id);
        if (it != sched.end()) {
          scheduled = it->second.first;
          known = true;
          sched.erase(it);
        }
      }
      if (!known) continue;
      ++settled_frames;
      if (reply.type == static_cast<std::uint8_t>(net::FrameType::kError)) {
        out.errors += 1;
        continue;
      }
      const double sojourn_us =
          static_cast<double>(arrival - scheduled) / 1000.0;
      out.answered += reply.answers.size();
      out.sojourn_us.insert(out.sojourn_us.end(), reply.answers.size(),
                            sojourn_us);
    }
  }
  sender.join();
  out.wall_s = static_cast<double>(now_ns() - start) / 1e9;
}

/// Runs \p per_conn on \p connections threads and merges the results.
template <typename PerConn>
PointResult run_point(unsigned connections, PerConn&& per_conn) {
  std::vector<PointResult> parts(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] { per_conn(parts[c]); });
  }
  for (auto& t : threads) t.join();
  PointResult merged;
  for (PointResult& p : parts) {
    merged.wall_s = std::max(merged.wall_s, p.wall_s);
    merged.answered += p.answered;
    merged.errors += p.errors;
    merged.sojourn_us.insert(merged.sojourn_us.end(), p.sojourn_us.begin(),
                             p.sojourn_us.end());
  }
  return merged;
}

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles percentiles_of(std::vector<double> sample) {
  if (sample.empty()) return {};
  std::sort(sample.begin(), sample.end());
  return {percentile_sorted(sample, 50), percentile_sorted(sample, 95),
          percentile_sorted(sample, 99)};
}

}  // namespace

int main(int argc, char** argv) try {
  const Flags flags(argc, argv);
  ServiceSetup setup = parse_service_setup(flags);
  if (!flags.has("queries")) setup.queries = 20000;  // cycled, not consumed
  const unsigned connections =
      static_cast<unsigned>(flags.get_int("connections", 4));
  const auto frame = static_cast<std::uint32_t>(flags.get_int("frame", 64));
  const double duration_s = flags.get_double("duration", 1.5);
  const std::vector<double> loads =
      parse_loads(flags.get_string("loads", "0.5,0.8,0.95"));
  const bool labeled = flags.get_bool("labels", false);
  const std::string json_path = flags.get_string("json", "");
  const std::string connect = flags.get_string("connect", "");

  bench::banner(
      "NET",
      "open-loop offered load exposes queueing delay a closed loop hides",
      ("family=" + flags.get_string("family", "er") +
       " n=" + std::to_string(setup.n) +
       " scheme=" + std::string(scheme_name(setup.service.scheme)) +
       " connections=" + std::to_string(connections) + " frame=" +
       std::to_string(frame) + (labeled ? " addressing=label" : ""))
          .c_str());

  // --- serving side: in-process server, or an external --connect target --
  std::unique_ptr<RouteService> service;
  std::unique_ptr<net::NetServer> server;
  std::thread server_thread;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<RouteQuery> traffic;
  std::vector<RouteAnswer> reference;

  if (connect.empty()) {
    const Graph g = setup.build_graph();
    traffic = setup.build_traffic(g);
    service = std::make_unique<RouteService>(g, setup.service);
    // The byte-identity reference computes BEFORE the server thread takes
    // the service's driver role (route() is driver-thread-only).
    std::vector<RouteQuery> probe(
        traffic.begin(),
        traffic.begin() + std::min<std::size_t>(traffic.size(), 256));
    reference = service->route_collect(probe);

    net::NetServerOptions nopt;
    nopt.coalesce = static_cast<std::uint32_t>(
        flags.get_int("net-coalesce", static_cast<int>(nopt.coalesce)));
    nopt.max_pending = static_cast<std::uint32_t>(
        flags.get_int("net-max-pending", static_cast<int>(nopt.max_pending)));
    server = std::make_unique<net::NetServer>(*service, nopt);
    port = server->port();
    server_thread = std::thread([&server] { server->run(); });
  } else {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("--connect expects HOST:PORT");
    }
    host = connect.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(connect.c_str() + colon + 1, nullptr, 10));
    if (flags.get_bool("verify", false)) {
      // Cross-process byte-identity: preprocessing is seeded and
      // deterministic, so a server started with the SAME flags serves
      // the same scheme — build the in-process twin and use its answers
      // as the reference for the socket probes.
      const Graph g = setup.build_graph();
      traffic = setup.build_traffic(g);
      RouteService twin(g, setup.service);
      std::vector<RouteQuery> probe(
          traffic.begin(),
          traffic.begin() + std::min<std::size_t>(traffic.size(), 256));
      reference = twin.route_collect(probe);
    } else {
      // External servers serve their own graph; drive uniform traffic
      // over the vertex domain the WELCOME advertises.
      net::NetClient probe;
      probe.connect(host, port);
      Rng rng(setup.seed + 2);
      traffic.resize(setup.queries);
      for (RouteQuery& q : traffic) {
        q.s = static_cast<VertexId>(rng.next_below(probe.welcome().n));
        q.t = static_cast<VertexId>(rng.next_below(probe.welcome().n));
      }
    }
  }

  bench::JsonReport report;
  report.set("experiment", std::string("net_openloop"))
      .set("n", std::uint64_t{setup.n})
      .set("scheme", std::string(scheme_name(setup.service.scheme)))
      .set("connections", std::uint64_t{connections})
      .set("frame", std::uint64_t{frame})
      .set("duration_s", duration_s)
      .set("addressing", std::string(labeled ? "label" : "vertex"))
      .set("seed", setup.seed);
  bench::add_host_metadata(report);

  // Labels come over the wire like a real client's would.
  net::NetClient label_client;
  WireTraffic wt;
  if (labeled) {
    label_client.connect(host, port);
    wt = build_wire_traffic(traffic, &label_client);
  } else {
    wt = build_wire_traffic(traffic, nullptr);
  }

  // --- phase 1: byte-identity over the socket --------------------------
  bool identical = true;
  if (!reference.empty()) {
    net::NetClient verify;
    verify.connect(host, port);
    std::vector<net::WireQuery> probe_wire(
        wt.queries.begin(),
        wt.queries.begin() + std::min<std::size_t>(wt.queries.size(), 256));
    const std::vector<net::WireAnswer> got =
        verify.query(probe_wire, labeled);
    identical = got.size() == reference.size();
    for (std::size_t i = 0; identical && i < got.size(); ++i) {
      identical = got[i].status ==
                      static_cast<std::uint8_t>(reference[i].status) &&
                  got[i].hops == reference[i].hops &&
                  got[i].header_bits == reference[i].header_bits;
    }
    std::printf("byte-identity: socket answers match route_collect on %zu "
                "probes ... %s\n",
                reference.size(), identical ? "yes" : "NO");
    report.set("socket_identical", std::string(identical ? "yes" : "no"));
  }

  // --- phase 2: closed-loop saturation baseline ------------------------
  const PointResult closed = run_point(connections, [&](PointResult& out) {
    closed_loop_conn(host, port, wt, labeled, frame, duration_s, out);
  });
  const Percentiles closed_p = percentiles_of(closed.sojourn_us);
  const double saturation_qps = closed.qps();
  std::printf("closed loop (%u conns): %.0f qps saturation; "
              "sojourn p50 %.0fus p95 %.0fus p99 %.0fus\n",
              connections, saturation_qps, closed_p.p50, closed_p.p95,
              closed_p.p99);
  report.set("saturation_qps", saturation_qps)
      .set("closed_p50_us", closed_p.p50)
      .set("closed_p95_us", closed_p.p95)
      .set("closed_p99_us", closed_p.p99)
      .set("closed_errors", closed.errors);

  // --- phase 3: the open-loop sweep ------------------------------------
  std::printf("%8s %12s %12s %10s %10s %10s %12s %8s\n", "load", "offered",
              "achieved", "p50_us", "p95_us", "p99_us", "srv_wait_p99",
              "errors");
  for (const double f : loads) {
    const double offered_qps = f * saturation_qps;
    if (offered_qps <= 0) break;
    const double frame_interval_s =
        static_cast<double>(frame) * connections / offered_qps;

    const bool have_metrics =
        service != nullptr && service->metrics_registry() != nullptr;
    obs::MetricsSnapshot before;
    if (have_metrics) {
      before = obs::snapshot_metrics(*service->metrics_registry());
    }
    const PointResult open = run_point(connections, [&](PointResult& out) {
      open_loop_conn(host, port, wt, labeled, frame, duration_s,
                     frame_interval_s, out);
    });
    double srv_wait_p99 = 0;
    if (have_metrics) {
      const obs::MetricsSnapshot delta = obs::metrics_delta(
          obs::snapshot_metrics(*service->metrics_registry()), before);
      const auto* hist = delta.find_histogram("croute_queue_wait_us");
      if (hist != nullptr) srv_wait_p99 = hist->hist.percentile(99);
    }

    const Percentiles p = percentiles_of(open.sojourn_us);
    std::printf("%7.0f%% %12.0f %12.0f %10.0f %10.0f %10.0f %12.0f %8llu\n",
                100 * f, offered_qps, open.qps(), p.p50, p.p95, p.p99,
                srv_wait_p99, static_cast<unsigned long long>(open.errors));
    report.add_row("openloop")
        .set("load_fraction", f)
        .set("offered_qps", offered_qps)
        .set("achieved_qps", open.qps())
        .set("p50_us", p.p50)
        .set("p95_us", p.p95)
        .set("p99_us", p.p99)
        .set("queue_wait_p99_us", srv_wait_p99)
        .set("closed_p99_us", closed_p.p99)
        .set("errors", open.errors)
        .set("answered", open.answered);
  }

  if (server != nullptr) {
    server->stop();
    server_thread.join();
    std::printf("server: %llu queries in %llu frames over %llu "
                "connections\n",
                static_cast<unsigned long long>(server->queries_served()),
                static_cast<unsigned long long>(server->frames_served()),
                static_cast<unsigned long long>(
                    server->connections_accepted()));
  }

  if (!json_path.empty()) {
    report.write(json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

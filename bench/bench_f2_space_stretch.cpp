/// \file bench_f2_space_stretch.cpp
/// \brief Experiment F2 — the space–stretch trade-off frontier (figure).
///
/// Claim (SPAA'01, framed by the Gavoille–Gengler lower bound): the
/// interesting frontier is table bits vs worst-case stretch. Sweeping
/// k = 2..5 traces the TZ frontier; the full-table scheme anchors the
/// "stretch < 3 costs Ω(n)" end, and Cowen's scheme sits strictly above
/// the TZ point at equal stretch 3. Each row is one plotted point.

#include <cstdio>

#include "baseline/cowen.hpp"
#include "baseline/full_table.hpp"
#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 2000));

  bench::banner("F2",
                "space-stretch frontier: TZ k=2..5 points, full-table "
                "anchor (stretch<3 regime), Cowen above TZ at stretch 3",
                "Erdos-Renyi largest component n ~ 4096 m ~ 4n; same pairs "
                "for every point");

  Rng rng(seed);
  const Graph g = make_workload(GraphFamily::kErdosRenyi, n, rng);
  const Simulator sim(g);
  const auto pairs = sample_pairs(g, num_pairs, rng);
  const VertexId nv = g.num_vertices();

  TextTable table({"point", "stretch bound", "measured p99", "measured max",
                   "max table", "avg table"});

  {
    const FullTableScheme full(g);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_full(sim, full, s, t); });
    std::uint64_t max_bits = 0, total = 0;
    for (VertexId v = 0; v < nv; ++v) {
      max_bits = std::max(max_bits, full.table_bits(v));
      total += full.table_bits(v);
    }
    table.row()
        .add("full-table")
        .add(std::uint64_t{1})
        .add(rep.stretch.p99, 3)
        .add(rep.stretch.max, 3)
        .add(format_bits(static_cast<double>(max_bits)))
        .add(format_bits(static_cast<double>(total) / nv));
  }
  {
    Rng crng(seed * 29);
    const CowenScheme cowen(g, crng);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_cowen(sim, cowen, s, t); });
    std::uint64_t max_bits = 0, total = 0;
    for (VertexId v = 0; v < nv; ++v) {
      max_bits = std::max(max_bits, cowen.table_bits(v));
      total += cowen.table_bits(v);
    }
    table.row()
        .add("cowen (stretch 3)")
        .add(std::uint64_t{3})
        .add(rep.stretch.p99, 3)
        .add(rep.stretch.max, 3)
        .add(format_bits(static_cast<double>(max_bits)))
        .add(format_bits(static_cast<double>(total) / nv));
  }
  for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
    Rng srng(seed * 31 + k);
    TZSchemeOptions opt;
    opt.pre.k = k;
    const TZScheme scheme(g, opt, srng);
    const StretchReport rep = measure_stretch(
        pairs,
        [&](VertexId s, VertexId t) { return route_tz(sim, scheme, s, t); });
    table.row()
        .add("tz k=" + std::to_string(k))
        .add(static_cast<std::uint64_t>(k == 1 ? 1 : 4 * k - 5))
        .add(rep.stretch.p99, 3)
        .add(rep.stretch.max, 3)
        .add(format_bits(static_cast<double>(scheme.max_table_bits())))
        .add(format_bits(static_cast<double>(scheme.total_table_bits()) /
                         nv));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: max table falls with k while the stretch "
              "budget rises; full-table is the Omega(n) anchor. Cowen "
              "matches tz k=2's stretch with a worse growth exponent (T1 "
              "fits it); at one fixed n its smaller per-entry constant "
              "(bare ports vs tree records) can still win on bits.\n");
  return 0;
}

/// \file bench_s1_throughput.cpp
/// \brief Experiment S1 — serving throughput of the sharded route service.
///
/// Claim: route-query handling over an immutable compact-routing scheme is
/// embarrassingly parallel — the service scales near-linearly with worker
/// threads while producing byte-identical answers at every thread count
/// (the dynamic shard schedule affects only *when* a query runs, never its
/// result). We serve the same traffic through BOTH serving paths (the
/// legacy sim/-adapter path and the default flat compiled view) at 1, 2,
/// 4, ... threads each, report throughput, latency percentiles and
/// stretch, and cross-check every run's answers against the legacy
/// single-threaded reference — the flat path must be faster AND
/// answer-identical.
///
/// Churn mode (--churn=C, default 3; 0 disables): after the static runs,
/// the same traffic is replayed per thread count while a SchemeManager
/// rebuilds the scheme in the background over C successively perturbed
/// topologies and hot-swaps each finished generation under the live batch
/// stream. Each thread count runs TWICE — once on the default delta-aware
/// incremental rebuild path and once with the full-rebuild escape hatch —
/// so the `churn_runs` rows directly attribute rebuild seconds between
/// the two on identical deltas. Reported per run: qps under swap, latency
/// percentiles, swap count, summed rebuild seconds with the
/// flat-compile / TZ-preprocess split, the SPT reuse ratio, and the swap
/// *blackout* — the worst wall time of one batch that straddled a
/// generation flip.
///
/// The churn delta defaults model *localized link churn* (a few dozen
/// link events per cycle — the regime where reusing untouched SPT
/// subtrees pays); --churn-reweight/--churn-remove/--churn-add set the
/// per-cycle edge fractions explicitly (pass PR-4's 0.3/0.05/0.05 for
/// the old full-re-metric regime).
///
/// Flags: --n --family --scheme --workload --queries --batch --k --seed
///        --threads (comma list) --json out.json --flat-only
///        --batch-group=G (flat pipeline depth; 0 = scalar serving)
///        --churn=C --churn-seed=S
///        --churn-reweight=F --churn-remove=F --churn-add=F
///        --sampling=centered|bernoulli (landmark sampler; bernoulli's
///        graph-independent hierarchy roughly doubles churn SPT reuse)
///
/// Persist mode (always on): after the serving rows, one artifact
/// publish + recover cycle prices the crash-safe persistence tier —
/// artifact size, encode/write seconds, and the service start from disk
/// versus a fresh preprocessing+compile build (the `persist_*` keys in
/// the JSON), with the recovered service checked answer-identical.
///
/// Note: the speedup column reflects the machine's core count; on a
/// single-core container every thread count serves at the same rate, but
/// the flat-vs-legacy ratio is visible at any core count.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "service/cli.hpp"
#include "persist/artifact_store.hpp"
#include "service/hot_swap.hpp"
#include "service/route_service.hpp"
#include "service/workload.hpp"
#include "sim/experiment.hpp"
#include "util/flags.hpp"

namespace {

using namespace croute;

std::vector<unsigned> parse_thread_list(const std::string& spec) {
  std::vector<unsigned> threads;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    if (v > 0) threads.push_back(static_cast<unsigned>(v));
  }
  if (threads.empty()) threads = {1, 2, 4};
  return threads;
}

}  // namespace

int main(int argc, char** argv) try {
  const Flags flags(argc, argv);
  // Shared serving flags (graph, scheme, traffic, driver) parse through
  // the one helper every serving binary uses; the bench keeps only its
  // sweep-specific knobs (thread list, churn shape, JSON path).
  ServiceSetup setup = parse_service_setup(flags);
  if (!flags.has("queries")) setup.queries = 50000;  // bench-sized default
  setup.exact = true;  // stretch columns need true distances
  const VertexId n = setup.n;
  const std::string family = flags.get_string("family", "er");
  const SchemeKind scheme = setup.service.scheme;
  const WorkloadKind workload = setup.workload;
  const std::uint32_t queries = setup.queries;
  const std::uint32_t batch = setup.driver.batch_size;
  const std::uint64_t seed = setup.seed;
  const std::vector<unsigned> thread_counts =
      parse_thread_list(flags.get_string("threads", "1,2,4"));
  const std::uint32_t batch_group = setup.service.batch_group;
  const SamplingMode sampling = setup.service.sampling;
  const std::string json_path = flags.get_string("json", "");

  bench::banner(
      "S1",
      "sharded serving scales with threads; answers are thread-count-"
      "invariant",
      ("family=" + family + " n=" + std::to_string(n) +
       " scheme=" + scheme_name(scheme) + " traffic=" +
       workload_name(workload) + " queries=" + std::to_string(queries))
          .c_str());

  const Graph g = setup.build_graph();
  // Source pool bounds the Dijkstra count of exact-stretch accounting
  // (helper default 64); exact distances attach because setup.exact.
  std::vector<RouteQuery> traffic = setup.build_traffic(g);

  std::printf("%8s %8s %12s %9s %10s %10s %10s %8s %6s\n", "path", "threads",
              "qps", "speedup", "p50_us", "p95_us", "p99_us", "stretch",
              "ok");
  bench::JsonReport report;
  report.set("experiment", std::string("s1_throughput"))
      .set("family", family)
      .set("n", std::uint64_t{n})
      .set("scheme", std::string(scheme_name(scheme)))
      .set("workload", std::string(workload_name(workload)))
      .set("queries", std::uint64_t{queries})
      .set("seed", seed)
      .set("batch_group", std::uint64_t{batch_group})
      .set("sampling", std::string(sampling_name(sampling)));
  bench::add_host_metadata(report);

  const bool flat_only = flags.get_bool("flat-only", false);
  std::vector<bool> flat_modes;
  if (!flat_only) flat_modes.push_back(false);
  flat_modes.push_back(true);

  double qps_base = 0;           // legacy (or first) run at 1 thread
  double legacy_qps_1t = 0, flat_qps_1t = 0;
  // Identity is checked over status/length/hops/header_bits/stretch —
  // paths are off here (recording them would tax the timed runs);
  // path-level flat-vs-legacy equivalence is test_flat_scheme's job.
  // The reference service stays alive anyway so reference answers could
  // never dangle if paths were ever enabled.
  std::vector<RouteAnswer> reference;
  std::unique_ptr<RouteService> reference_service;
  bool all_identical = true;
  for (const bool use_flat : flat_modes) {
    for (const unsigned t : thread_counts) {
      RouteServiceOptions opt = setup.service;
      opt.threads = t;
      opt.use_flat = use_flat;
      bench::Stopwatch preprocess_watch;
      auto service = std::make_unique<RouteService>(g, opt);
      const double preprocess_s = preprocess_watch.seconds();

      // Warm one batch (first-touch, pool spin-up), then measure.
      const std::vector<RouteQuery> warm(
          traffic.begin(),
          traffic.begin() + std::min<std::size_t>(traffic.size(), batch));
      service->route_collect(warm);

      DriverOptions dopt;
      dopt.batch_size = batch;
      // Interval metrics over exactly the measured loop (metrics are on
      // by default — the qps rows price the observability layer): the
      // delta of two registry snapshots isolates this run's samples.
      const obs::MetricsSnapshot snap_before =
          obs::snapshot_metrics(*service->metrics_registry());
      const DriverReport r = run_closed_loop(*service, traffic, dopt);
      const obs::MetricsSnapshot snap_delta = obs::metrics_delta(
          obs::snapshot_metrics(*service->metrics_registry()), snap_before);
      const auto* hist = snap_delta.find_histogram("croute_query_latency_us");

      // Invariance: every run (either path, any thread count) serves the
      // same answers as the first run.
      std::vector<RouteAnswer> answers = service->route_collect(traffic);
      bool identical = true;
      if (reference.empty()) {
        reference = std::move(answers);
        reference_service = std::move(service);
      } else {
        for (std::size_t i = 0; i < reference.size(); ++i) {
          if (!same_route(reference[i], answers[i])) {
            identical = false;
            break;
          }
        }
      }
      all_identical = all_identical && identical;

      if (qps_base == 0) qps_base = r.qps;
      if (t == thread_counts.front()) {
        (use_flat ? flat_qps_1t : legacy_qps_1t) = r.qps;
      }
      const double speedup = qps_base > 0 ? r.qps / qps_base : 0;
      const char* path_name = use_flat ? "flat" : "legacy";
      std::printf("%8s %8u %12.0f %8.2fx %10.2f %10.2f %10.2f %8.3f %6s\n",
                  path_name, t, r.qps, speedup, r.latency_p50_us,
                  r.latency_p95_us, r.latency_p99_us, r.stretch.mean,
                  identical ? "yes" : "NO");

      // Latency semantics differ by serving mode: scalar rows measure each
      // query's own wall time, batched rows its amortized share of the
      // pipeline generation — marked so trajectory readers don't compare
      // the two as one metric.
      const char* latency_metric = use_flat && batch_group > 0
                                       ? "group_amortized"
                                       : "per_query";
      report.add_row("runs")
          .set("path", std::string(path_name))
          .set("threads", std::uint64_t{t})
          .set("qps", r.qps)
          .set("speedup", speedup)
          .set("latency_metric", std::string(latency_metric))
          .set("p50_us", r.latency_p50_us)
          .set("p95_us", r.latency_p95_us)
          .set("p99_us", r.latency_p99_us)
          // The histogram-derived percentiles (log buckets, <= 1.25x
          // relative error) next to the exact sorted-sample ones above —
          // what a scraper would report vs what the driver measured.
          .set("hist_p50_us", hist != nullptr ? hist->hist.percentile(50) : 0)
          .set("hist_p95_us", hist != nullptr ? hist->hist.percentile(95) : 0)
          .set("hist_p99_us", hist != nullptr ? hist->hist.percentile(99) : 0)
          .set("queue_wait_p99_us", r.queue_wait_p99_us)
          .set("mean_stretch", r.stretch.mean)
          .set("max_stretch", r.stretch.max)
          .set("mean_hops", r.mean_hops)
          .set("preprocess_s", preprocess_s)
          .set("delivered", r.delivered)
          .set("identical", std::string(identical ? "yes" : "no"));
    }
  }

  std::printf("answers identical across paths and thread counts: %s\n",
              all_identical ? "yes" : "NO");
  report.set("identical_across_runs",
             std::string(all_identical ? "yes" : "no"));
  if (legacy_qps_1t > 0 && flat_qps_1t > 0) {
    std::printf("flat vs legacy at %u thread(s): %.2fx\n",
                thread_counts.front(), flat_qps_1t / legacy_qps_1t);
    report.set("flat_vs_legacy_1t", flat_qps_1t / legacy_qps_1t);
  }

  // --- churn mode: qps under background rebuild + hot swap ---------------
  const auto churn_cycles =
      static_cast<std::uint32_t>(flags.get_int("churn", 3));
  bool churn_ok = true;
  if (churn_cycles > 0) {
    const auto churn_seed =
        static_cast<std::uint64_t>(flags.get_int("churn-seed", seed + 3));
    // Localized link churn by default: ~20 link events per cycle at the
    // committed n=10k/m=40k instance (tens of flaps among tens of
    // thousands of links — the BGP-churn regime the delta-aware rebuild
    // targets). PR 4's full-re-metric regime is reproducible with
    // --churn-reweight=0.3 --churn-remove=0.05 --churn-add=0.05.
    DeltaOptions delta;
    delta.reweight_fraction = flags.get_double("churn-reweight", 2.5e-4);
    delta.remove_fraction = flags.get_double("churn-remove", 1.25e-4);
    delta.add_fraction = flags.get_double("churn-add", 1.25e-4);
    report.set("churn_cycles", std::uint64_t{churn_cycles});
    report.set("churn_reweight_fraction", delta.reweight_fraction);
    report.set("churn_remove_fraction", delta.remove_fraction);
    report.set("churn_add_fraction", delta.add_fraction);
    std::printf("\nchurn mode: %u background rebuild+swap cycles per run "
                "(flat path), incremental vs full rebuild\n",
                churn_cycles);
    std::printf("%8s %12s %12s %10s %8s %12s %12s %8s %8s\n", "threads",
                "rebuild", "qps", "p99_us", "swaps", "blackout_us",
                "rebuild_s", "reuse", "ok");
    for (const unsigned t : thread_counts) {
      for (const bool full_rebuild : {true, false}) {
        RouteServiceOptions opt = setup.service;
        opt.threads = t;
        RouteService service(g, opt);
        SchemeManager manager(service);
        service.route_collect(std::vector<RouteQuery>(
            traffic.begin(),
            traffic.begin() + std::min<std::size_t>(traffic.size(), batch)));

        DriverOptions dopt;
        dopt.batch_size = batch;
        ChurnOptions copt;
        copt.cycles = churn_cycles;
        copt.seed = churn_seed;  // same seed: both modes see identical deltas
        copt.delta = delta;
        copt.full_rebuild = full_rebuild;
        const ChurnReport r =
            run_closed_loop_churn(service, manager, traffic, dopt, copt);

        // The settled service must serve the final topology byte-equally
        // to a fresh build on it (the hot-swap determinism contract).
        RouteService fresh(r.final_graph, opt);
        const std::vector<RouteQuery> probe(
            traffic.begin(),
            traffic.begin() + std::min<std::size_t>(traffic.size(), batch));
        std::vector<RouteQuery> probe_unknown = probe;
        for (RouteQuery& q : probe_unknown) q.exact = kUnknownDistance;
        const std::vector<RouteAnswer> a = service.route_collect(probe_unknown);
        const std::vector<RouteAnswer> b = fresh.route_collect(probe_unknown);
        bool identical = a.size() == b.size();
        for (std::size_t i = 0; identical && i < a.size(); ++i) {
          identical = same_route(a[i], b[i]);
        }
        churn_ok = churn_ok && identical && r.swaps == churn_cycles;

        const char* rebuild_name = full_rebuild ? "full" : "incremental";
        std::printf(
            "%8u %12s %12.0f %10.2f %8llu %12.1f %12.3f %7.1f%% %8s\n", t,
            rebuild_name, r.driver.qps, r.driver.latency_p99_us,
            static_cast<unsigned long long>(r.swaps), r.max_blackout_us,
            r.rebuild_seconds, 100 * r.reuse_ratio(),
            identical ? "yes" : "NO");
        report.add_row("churn_runs")
            .set("threads", std::uint64_t{t})
            .set("rebuild", std::string(rebuild_name))
            .set("qps", r.driver.qps)
            .set("latency_metric", std::string(batch_group > 0
                                                   ? "group_amortized"
                                                   : "per_query"))
            .set("p50_us", r.driver.latency_p50_us)
            .set("p95_us", r.driver.latency_p95_us)
            .set("p99_us", r.driver.latency_p99_us)
            .set("queue_wait_p99_us", r.driver.queue_wait_p99_us)
            .set("swaps", r.swaps)
            .set("straddled_batches", r.straddled_batches)
            .set("blackout_us", r.max_blackout_us)
            .set("rebuild_s", r.rebuild_seconds)
            .set("flat_compile_s", r.flat_compile_seconds)
            .set("tz_incremental_s", r.incremental_preprocess_seconds)
            .set("incremental_rebuilds", r.incremental_rebuilds)
            .set("reuse_ratio", r.reuse_ratio())
            .set("clusters_reused", r.clusters_reused)
            .set("clusters_total", r.clusters_total)
            .set("final_identical", std::string(identical ? "yes" : "no"));
      }
    }
    std::printf("churn runs settled identical to fresh builds: %s\n",
                churn_ok ? "yes" : "NO");
    report.set("churn_identical", std::string(churn_ok ? "yes" : "no"));
  }
  all_identical = all_identical && churn_ok;

  // --- persist mode: artifact publish + recover-from-disk start ----------
  // What the crash-safe artifact tier buys on this instance: a service
  // start that reads + verifies + decodes the published artifact instead
  // of rerunning TZ preprocessing and the flat compile. The recovered
  // service must answer byte-identically to the fresh one it was encoded
  // from.
  {
    const std::string dir = "/tmp/croute_bench_s1_artifacts";
    std::filesystem::remove_all(dir);
    RouteServiceOptions opt = setup.service;
    opt.threads = 1;

    bench::Stopwatch fresh_watch;
    RouteService fresh_svc(g, opt);
    const double fresh_build_s = fresh_watch.seconds();

    persist::ArtifactStore store({dir, 2});
    const persist::PublishResult pub =
        store.publish_generation(*fresh_svc.package());
    if (!pub.ok) {
      std::fprintf(stderr, "persist publish failed: %s\n", pub.error.c_str());
      all_identical = false;
    } else {
      opt.persist.dir = dir;
      bench::Stopwatch recover_watch;
      RouteService recovered_svc(g, opt);
      const double publish_from_disk_s = recover_watch.seconds();

      std::vector<RouteQuery> probe(
          traffic.begin(),
          traffic.begin() + std::min<std::size_t>(traffic.size(), batch));
      for (RouteQuery& q : probe) q.exact = kUnknownDistance;
      const std::vector<RouteAnswer> a = fresh_svc.route_collect(probe);
      const std::vector<RouteAnswer> b = recovered_svc.route_collect(probe);
      bool identical = recovered_svc.recovered_from_artifact() &&
                       a.size() == b.size();
      for (std::size_t i = 0; identical && i < a.size(); ++i) {
        identical = same_route(a[i], b[i]);
      }
      all_identical = all_identical && identical;

      std::printf("\npersist: artifact %.1f MiB, encode %.3fs, write %.3fs; "
                  "start from disk %.3fs vs fresh build %.3fs (%.1fx); "
                  "identical %s\n",
                  static_cast<double>(pub.bytes) / (1024.0 * 1024.0),
                  pub.encode_s, pub.write_s, publish_from_disk_s,
                  fresh_build_s,
                  publish_from_disk_s > 0 ? fresh_build_s / publish_from_disk_s
                                          : 0,
                  identical ? "yes" : "NO");
      report.set("persist_artifact_bytes", pub.bytes)
          .set("persist_encode_s", pub.encode_s)
          .set("persist_write_s", pub.write_s)
          .set("persist_publish_from_disk_s", publish_from_disk_s)
          .set("persist_fresh_build_s", fresh_build_s)
          .set("persist_speedup_vs_fresh",
               publish_from_disk_s > 0 ? fresh_build_s / publish_from_disk_s
                                       : 0)
          .set("persist_identical", std::string(identical ? "yes" : "no"));
    }
    std::filesystem::remove_all(dir);
  }

  if (!json_path.empty()) {
    report.write(json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

/// \file bench_t3_stretch_vs_k.cpp
/// \brief Experiment T3 — measured stretch against the 4k−5 / 2k−1 bounds.
///
/// Claim (SPAA'01 §3–§4): source-directed routing has stretch ≤ 4k−5
/// (≤ 3 for k = 2); with a handshake, ≤ 2k−1. On realistic inputs the
/// measured stretch sits far below the worst case. For each graph family
/// and k we route the same sampled pairs both ways and report
/// mean / p99 / max measured stretch next to the bounds.

#include <cstdio>

#include "bench_common.hpp"
#include "core/tz_scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace croute;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const auto n = static_cast<VertexId>(flags.get_int("n", 4096));
  const auto num_pairs =
      static_cast<std::uint32_t>(flags.get_int("pairs", 2000));

  bench::banner("T3",
                "measured stretch <= 4k-5 direct, <= 2k-1 with handshake; "
                "far below worst case in practice",
                "three families at n ~ 4096, 2000 sampled pairs each");

  TextTable table({"family", "k", "bound", "mean", "p99", "max", "bound(hs)",
                   "mean(hs)", "max(hs)", "delivered"});

  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kGeometric,
        GraphFamily::kBarabasiAlbert}) {
    Rng rng(seed);
    const Graph g = make_workload(family, n, rng);
    const Simulator sim(g);
    const auto pairs = sample_pairs(g, num_pairs, rng);
    for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
      Rng srng(seed * 11 + k);
      TZSchemeOptions opt;
      opt.pre.k = k;
      const TZScheme scheme(g, opt, srng);
      const StretchReport direct = measure_stretch(
          pairs,
          [&](VertexId s, VertexId t) { return route_tz(sim, scheme, s, t); });
      const StretchReport hs =
          measure_stretch(pairs, [&](VertexId s, VertexId t) {
            return route_tz_handshake(sim, scheme, s, t);
          });
      table.row()
          .add(family_name(family))
          .add(static_cast<std::uint64_t>(k))
          .add(static_cast<std::uint64_t>(k == 1 ? 1 : 4 * k - 5))
          .add(direct.stretch.mean, 3)
          .add(direct.stretch.p99, 3)
          .add(direct.stretch.max, 3)
          .add(static_cast<std::uint64_t>(2 * k - 1))
          .add(hs.stretch.mean, 3)
          .add(hs.stretch.max, 3)
          .add(std::to_string(direct.delivered) + "+" +
               std::to_string(hs.delivered) + "/" +
               std::to_string(2 * pairs.size()));
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("expected shape: every max <= its bound; handshake max <= "
              "2k-1 << 4k-5 for large k; all pairs delivered\n");
  return 0;
}
